#pragma once

// Per-rank asynchronous progress engine.
//
// `Comm::isend` returns immediately: the serialization, checksum, and
// mailbox delivery of the message run on this engine's thread, overlapping
// with the caller's computation (the MPI progress-thread model). Operations
// posted by one rank execute in FIFO order, so two isends to the same
// (dst, tag) are delivered in posting order and a blocking send that
// flushes the engine first can never overtake an earlier isend.
//
// Error model: an operation that throws (e.g. BufferOverflow on a bounded
// mailbox) completes its handle with the exception; `PendingSend::wait`
// rethrows it. Fire-and-forget senders that drop the handle still hear
// about the failure — when a failing op's handle is already dropped, the
// engine keeps the first such deferred error and `flush()` rethrows it, and
// Cluster::run flushes every rank's engine when its body returns. An error
// whose handle is still held at completion is the holder's to collect via
// wait()/test() (dropping such a handle unobserved loses the error). When
// the cluster aborts, queued operations are cancelled: they complete with
// ClusterAborted instead of executing.

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

namespace triolet::net {

/// Completion state shared by a pending handle and the progress engine.
/// Completion is published through an atomic flag so waiters can spin
/// briefly (in-process ops usually finish in microseconds — cheaper than a
/// park/wake round trip through the cv) and testers never take the lock on
/// the not-done path; the mutex/cv pair only backs the parked slow path
/// and makes the error pointer visible.
struct AsyncOpState {
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<bool> done{false};
  std::exception_ptr error;

  void complete(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(mu);
      error = std::move(e);
      done.store(true, std::memory_order_release);
    }
    cv.notify_all();
  }

  /// Blocks until the operation completes; rethrows its error.
  void wait() {
    for (int i = 0; i < 256; ++i) {
      if (done.load(std::memory_order_acquire)) break;
      if (i >= 32) std::this_thread::yield();
    }
    if (!done.load(std::memory_order_acquire)) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done.load(std::memory_order_acquire); });
    }
    // The release store under the lock ordered `error` before `done`, so
    // the acquire load above makes it safe to read here without the lock.
    if (error) std::rethrow_exception(error);
  }

  /// True once complete; rethrows the operation's error.
  bool test() {
    if (!done.load(std::memory_order_acquire)) return false;
    if (error) std::rethrow_exception(error);
    return true;
  }
};

/// Waitable handle for one asynchronous send. The payload (or the value an
/// isend serializes) is owned by the engine until completion, so the caller
/// may reuse its own buffers immediately; a *borrowed* zero-copy segment,
/// however, references the engine-owned value, never caller memory.
class PendingSend {
 public:
  PendingSend() = default;

  bool valid() const { return state_ != nullptr; }

  /// Blocks until the message is delivered; rethrows delivery errors.
  void wait() {
    if (state_) state_->wait();
  }

  /// Non-blocking completion probe; rethrows delivery errors.
  bool test() { return state_ ? state_->test() : true; }

 private:
  friend class Comm;
  explicit PendingSend(std::shared_ptr<AsyncOpState> s)
      : state_(std::move(s)) {}

  std::shared_ptr<AsyncOpState> state_;
};

/// Waits for every send in `sends` (rethrows the first error encountered).
template <typename Sends>
void wait_all_sends(Sends& sends) {
  for (auto& s : sends) s.wait();
}

class ProgressEngine {
 public:
  /// `aborted` is the cluster's abort flag: queued operations observed
  /// after it rises are cancelled with ClusterAborted.
  explicit ProgressEngine(const std::atomic<bool>* aborted);
  ~ProgressEngine();

  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;

  /// Enqueues `op` for FIFO execution on the engine thread.
  std::shared_ptr<AsyncOpState> post(std::function<void()> op);

  /// Blocks until every posted operation has completed, then rethrows (and
  /// clears) the first deferred error from operations whose handles were
  /// dropped without waiting.
  void flush();

 private:
  void loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // wakes the engine thread
  std::condition_variable drain_cv_;  // wakes flush() waiters
  std::deque<std::pair<std::function<void()>, std::shared_ptr<AsyncOpState>>>
      queue_;
  std::size_t in_flight_ = 0;  // queued + currently executing
  std::exception_ptr deferred_error_;
  bool stop_ = false;
  const std::atomic<bool>* aborted_;
  std::thread thread_;  // last member: started after all state exists
};

}  // namespace triolet::net
