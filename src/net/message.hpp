#pragma once

// Wire-level message for the in-process cluster substrate.
//
// Ranks communicate only through these serialized payloads; nothing else is
// shared between ranks in skeleton code, so the substrate enforces the same
// discipline a real MPI cluster would (paper §3.4). Payloads carry a
// checksum so corrupted slicing/serialization is detected at receive time.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace triolet::net {

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;
/// Matches any tag in recv().
inline constexpr int kAnyTag = -1;

struct Message {
  int src = 0;
  int tag = 0;
  std::vector<std::byte> payload;
  std::uint64_t checksum = 0;
};

/// Raised when a rank attempts to buffer a message larger than the
/// substrate's limit (used to model Eden's bounded message buffering).
class BufferOverflow : public std::exception {
 public:
  const char* what() const noexcept override {
    return "message exceeds the communication buffer limit";
  }
};

/// Raised on ranks blocked in recv() when a peer rank failed.
class ClusterAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "cluster aborted: a peer rank raised an error";
  }
};

}  // namespace triolet::net
