#pragma once

// Wire-level message for the in-process cluster substrate.
//
// Ranks communicate only through these serialized payloads; nothing else is
// shared between ranks in skeleton code, so the substrate enforces the same
// discipline a real MPI cluster would (paper §3.4). Payloads carry a
// checksum so corrupted slicing/serialization is detected at receive time.
//
// A payload is either a pooled slab (eager messages: bytes copied inline
// into a BufferPool slab by the sender) or a plain vector (rendezvous
// messages: the sender's serialized buffer changes hands whole). `Payload`
// abstracts over the two so receive-side consumers just see a span of
// bytes; its destructor routes the storage back where it came from — slab
// to the pool, vector to the serialization recycle cache — which is what
// closes the zero-allocation loop.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <span>
#include <utility>
#include <vector>

#include "net/pool.hpp"
#include "serial/bytes.hpp"

namespace triolet::net {

/// Matches any source rank in recv().
inline constexpr int kAnySource = -1;
/// Matches any tag in recv().
inline constexpr int kAnyTag = -1;

/// Owning byte buffer backing one message. Move-only; converts to
/// std::span<const std::byte> so checksum/deserialize call sites treat it
/// exactly like the vector it replaced.
class Payload {
 public:
  Payload() = default;

  /// Vector mode: takes ownership of a flat byte vector.
  Payload(std::vector<std::byte> v)  // NOLINT(google-explicit-constructor)
      : vec_(std::move(v)), data_(vec_.data()), size_(vec_.size()) {}

  /// Slab mode: takes ownership of `size` bytes at `slab` (a BufferPool
  /// allocation of class `cls`), released back to the pool on destruction.
  static Payload from_slab(std::byte* slab, std::uint32_t cls,
                           std::size_t size) {
    Payload p;
    p.data_ = slab;
    p.size_ = size;
    p.slab_cls_ = cls;
    return p;
  }

  Payload(Payload&& other) noexcept { move_from(other); }
  Payload& operator=(Payload&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  Payload& operator=(std::vector<std::byte> v) {
    reset();
    vec_ = std::move(v);
    data_ = vec_.data();
    size_ = vec_.size();
    return *this;
  }
  Payload(const Payload&) = delete;
  Payload& operator=(const Payload&) = delete;
  ~Payload() { reset(); }

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  operator std::span<const std::byte>() const {  // NOLINT
    return {data_, size_};
  }
  std::span<const std::byte> span() const { return {data_, size_}; }

  /// Extracts the bytes as a vector. Vector-mode payloads move; slab-mode
  /// payloads copy into a recycled vector and release the slab.
  std::vector<std::byte> take_vector() && {
    if (is_slab()) {
      std::vector<std::byte> out = serial::acquire_stream_buffer();
      out.resize(size_);
      if (size_ != 0) std::memcpy(out.data(), data_, size_);
      reset();
      return out;
    }
    std::vector<std::byte> out = std::move(vec_);
    out.resize(size_);
    data_ = nullptr;
    size_ = 0;
    return out;
  }

  bool is_slab() const { return slab_cls_ != kNoSlab; }

 private:
  static constexpr std::uint32_t kNoSlab = 0xFFFFFFFFu;

  void move_from(Payload& other) noexcept {
    vec_ = std::move(other.vec_);
    data_ = other.data_;
    size_ = other.size_;
    slab_cls_ = other.slab_cls_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.slab_cls_ = kNoSlab;
    other.vec_.clear();
  }

  void reset() noexcept {
    if (is_slab()) {
      BufferPool::instance().release(const_cast<std::byte*>(data_),
                                     slab_cls_);
    } else if (vec_.capacity() != 0) {
      serial::recycle_stream_buffer(std::move(vec_));
      vec_ = {};
    }
    data_ = nullptr;
    size_ = 0;
    slab_cls_ = kNoSlab;
  }

  std::vector<std::byte> vec_;
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint32_t slab_cls_ = kNoSlab;
};

struct Message {
  int src = 0;
  int tag = 0;
  Payload payload;
  std::uint64_t checksum = 0;
};

/// Raised when a rank attempts to buffer a message larger than the
/// substrate's limit (used to model Eden's bounded message buffering).
class BufferOverflow : public std::exception {
 public:
  const char* what() const noexcept override {
    return "message exceeds the communication buffer limit";
  }
};

/// Raised on ranks blocked in recv() when a peer rank failed.
class ClusterAborted : public std::exception {
 public:
  const char* what() const noexcept override {
    return "cluster aborted: a peer rank raised an error";
  }
};

}  // namespace triolet::net
