#include "net/slice_cache.hpp"

#include <atomic>
#include <cstdlib>

#include "serial/checksum.hpp"

namespace triolet::net {

const SliceCache::Entry* SliceCache::lookup(const serial::SliceKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.pos);  // touch: move to front
  return &it->second.entry;
}

void SliceCache::insert(const serial::SliceKey& key,
                        std::span<const std::byte> payload) {
  Entry e;
  e.len = payload.size();
  e.checksum = serial::checksum(payload);
  e.bytes.assign(payload.begin(), payload.end());
  if (stats_) stats_->bytes_inserted += static_cast<std::int64_t>(e.len);
  place(key, std::move(e));
}

void SliceCache::insert_meta(const serial::SliceKey& key, std::size_t len,
                             std::uint64_t checksum) {
  Entry e;
  e.len = len;
  e.checksum = checksum;
  place(key, std::move(e));
}

void SliceCache::place(const serial::SliceKey& key, Entry e) {
  retire_older_versions(key);
  auto it = map_.find(key);
  if (it != map_.end()) erase_node(it);
  const std::size_t len = e.len;
  lru_.push_front(key);
  map_.emplace(key, Node{std::move(e), lru_.begin()});
  held_ += len;
  evict_until_within_budget();
}

void SliceCache::retire_older_versions(const serial::SliceKey& key) {
  // Stale versions can never be looked up again (the version is part of the
  // key), so drop them eagerly — identically on sender model and receiver.
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->first.id == key.id && it->first.version < key.version) {
      auto victim = it++;
      erase_node(victim);
    } else {
      ++it;
    }
  }
}

void SliceCache::evict_until_within_budget() {
  while (held_ > budget_ && !lru_.empty()) {
    auto it = map_.find(lru_.back());
    erase_node(it);
    if (stats_) stats_->evictions += 1;
  }
}

void SliceCache::erase(const serial::SliceKey& key) {
  auto it = map_.find(key);
  if (it != map_.end()) erase_node(it);
}

void SliceCache::erase_node(
    std::unordered_map<serial::SliceKey, Node, serial::SliceKeyHash>::iterator
        it) {
  held_ -= it->second.entry.len;
  lru_.erase(it->second.pos);
  map_.erase(it);
}

bool SliceCache::corrupt_one_for_testing() {
  for (auto& [key, node] : map_) {
    if (!node.entry.bytes.empty()) {
      node.entry.bytes[0] ^= std::byte{0x01};
      return true;
    }
  }
  return false;
}

namespace {

constexpr std::size_t kDefaultBudget = std::size_t{256} << 20;  // 256 MiB

std::atomic<std::size_t>& budget_override() {
  // all-ones is a sentinel for "not overridden: read the env".
  static std::atomic<std::size_t> v{~std::size_t{0}};
  return v;
}

std::size_t budget_from_env() {
  const char* s = std::getenv("TRIOLET_SLICE_CACHE_BYTES");
  if (s == nullptr || *s == '\0') return kDefaultBudget;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') return kDefaultBudget;  // not a number
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t slice_cache_budget() {
  const std::size_t o = budget_override().load(std::memory_order_relaxed);
  if (o != ~std::size_t{0}) return o;
  static const std::size_t env = budget_from_env();
  return env;
}

void set_slice_cache_budget(std::size_t bytes) {
  budget_override().store(bytes, std::memory_order_relaxed);
}

}  // namespace triolet::net
