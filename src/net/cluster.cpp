#include "net/cluster.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "net/tags.hpp"
#include "support/macros.hpp"

namespace triolet::net {

ClusterResult Cluster::run(int nranks, const std::function<void(Comm&)>& body,
                           const ClusterOptions& options) {
  // Startup audit: every reserved tag band (user, scheduler, async-progress,
  // group relay, collectives) must be pairwise disjoint, or wildcard-free
  // matching could steal another subsystem's messages.
  assert_tag_bands_disjoint();
  ClusterState state(nranks, TransportOptions{
                                 .backend = options.transport,
                                 .max_message_bytes = options.max_message_bytes,
                                 .eager_bytes = options.eager_bytes,
                             });

  std::mutex result_mu;
  ClusterResult result;

  auto rank_main = [&](int rank) {
    Comm comm(rank, &state);
    try {
      body(comm);
      // Drain queued isends so a fire-and-forget error surfaces as a rank
      // failure rather than vanishing with the progress engine.
      comm.flush_async();
    } catch (const ClusterAborted&) {
      // Secondary failure: this rank was blocked when a peer died.
    } catch (const std::exception& e) {
      {
        std::lock_guard<std::mutex> lock(result_mu);
        if (result.ok) {
          result.ok = false;
          result.error = e.what();
        }
      }
      state.abort_all();
    }
    // Quiesce before reading stats: the progress engine may still be
    // retiring cancelled ops after an abort.
    comm.quiesce();
    std::lock_guard<std::mutex> lock(result_mu);
    result.total_stats += comm.stats();
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back(rank_main, r);
  }
  for (auto& t : threads) t.join();
  return result;
}

CommStats Cluster::run_or_abort(int nranks,
                                const std::function<void(Comm&)>& body,
                                const ClusterOptions& options) {
  ClusterResult r = run(nranks, body, options);
  TRIOLET_CHECK(r.ok, r.error.c_str());
  return r.total_stats;
}

}  // namespace triolet::net
