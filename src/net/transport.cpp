#include "net/transport.hpp"

#include <cstdlib>
#include <vector>

#include "net/mailbox.hpp"
#include "net/ring_transport.hpp"
#include "support/macros.hpp"

namespace triolet::net {

std::size_t resolve_eager_bytes(long option) {
  if (option >= 0) return static_cast<std::size_t>(option);
  if (const char* env = std::getenv("TRIOLET_EAGER_BYTES")) {
    const long v = std::atol(env);
    if (v >= 0) return static_cast<std::size_t>(v);
  }
  return kDefaultEagerBytes;
}

std::string resolve_transport_backend(const std::string& option) {
  std::string backend = option;
  if (backend.empty()) {
    if (const char* env = std::getenv("TRIOLET_TRANSPORT")) backend = env;
  }
  if (backend.empty()) backend = "ring";
  return backend;
}

namespace {

/// The baseline backend: one mutex+condvar Mailbox per rank, exactly the
/// pre-Transport data path. Endpoints are thin stateless adapters (the
/// Mailbox is already multi-producer/multi-consumer safe), shared by every
/// band — all bands' traffic interleaves in one queue per rank, which is
/// the O(pending) behavior bm_msg measures the ring plane against.
class MailboxTransport final : public Transport {
 public:
  MailboxTransport(int nranks, std::size_t max_message_bytes,
                   std::size_t eager)
      : eager_bytes_(eager) {
    inboxes_.reserve(static_cast<std::size_t>(nranks));
    endpoints_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      inboxes_.push_back(std::make_unique<Mailbox>(max_message_bytes));
      endpoints_.push_back(
          std::make_unique<MailboxEndpoint>(this, r));
    }
  }

  int nranks() const override { return static_cast<int>(inboxes_.size()); }
  const char* name() const override { return "mailbox"; }
  std::size_t eager_bytes() const override { return eager_bytes_; }

  Endpoint& attach(int rank, int /*band_base*/) override {
    TRIOLET_CHECK(rank >= 0 && rank < nranks(),
                  "attach: rank outside the cluster");
    return *endpoints_[static_cast<std::size_t>(rank)];
  }

  std::size_t purge_tag_range(int lo, int hi) override {
    std::size_t dropped = 0;
    for (auto& inbox : inboxes_) dropped += inbox->purge_tag_range(lo, hi);
    return dropped;
  }

  void interrupt_all() override {
    for (auto& inbox : inboxes_) inbox->interrupt();
  }

  void inject(int dst, Message m) override {
    inboxes_[static_cast<std::size_t>(dst)]->push(std::move(m));
  }

 private:
  class MailboxEndpoint final : public Endpoint {
   public:
    MailboxEndpoint(MailboxTransport* t, int rank) : t_(t), rank_(rank) {}

    void deliver(int dst, int tag, serial::SegmentedBytes sg,
                 MsgCounters& /*counters*/) override {
      Message m;
      m.src = rank_;
      m.tag = tag;
      m.checksum = sg.stream_checksum();
      std::vector<std::byte> flat;
      if (!sg.take_flat(flat)) {
        flat.resize(sg.size());
        sg.gather_into(flat.data());
      }
      m.payload = std::move(flat);
      t_->inboxes_[static_cast<std::size_t>(dst)]->push(std::move(m));
    }

    Message pop_match(int src, int tag, const std::atomic<bool>& aborted,
                      int wild_lo, int wild_hi,
                      const std::atomic<bool>* also_aborted) override {
      return t_->inboxes_[static_cast<std::size_t>(rank_)]->pop_match(
          src, tag, aborted, wild_lo, wild_hi, also_aborted);
    }

    Message pop_match_any(std::span<const std::pair<int, int>> patterns,
                          const std::atomic<bool>& aborted,
                          std::size_t& which, int wild_lo, int wild_hi,
                          const std::atomic<bool>* also_aborted) override {
      return t_->inboxes_[static_cast<std::size_t>(rank_)]->pop_match_any(
          patterns, aborted, which, wild_lo, wild_hi, also_aborted);
    }

    bool try_pop_match(int src, int tag, Message& out, int wild_lo,
                       int wild_hi) override {
      return t_->inboxes_[static_cast<std::size_t>(rank_)]->try_pop_match(
          src, tag, out, wild_lo, wild_hi);
    }

   private:
    MailboxTransport* t_;
    const int rank_;
  };

  const std::size_t eager_bytes_;
  std::vector<std::unique_ptr<Mailbox>> inboxes_;
  std::vector<std::unique_ptr<MailboxEndpoint>> endpoints_;
};

}  // namespace

std::unique_ptr<Transport> make_transport(int nranks,
                                          const TransportOptions& options) {
  TRIOLET_CHECK(nranks >= 1, "cluster needs at least one rank");
  const std::string backend = resolve_transport_backend(options.backend);
  const std::size_t eager = resolve_eager_bytes(options.eager_bytes);
  if (backend == "mailbox") {
    return std::make_unique<MailboxTransport>(
        nranks, options.max_message_bytes, eager);
  }
  TRIOLET_CHECK(backend == "ring",
                "TRIOLET_TRANSPORT / TransportOptions::backend must be "
                "'ring' or 'mailbox'");
  return make_ring_transport(nranks, options.max_message_bytes, eager);
}

}  // namespace triolet::net
