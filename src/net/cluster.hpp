#pragma once

// SPMD cluster launcher.
//
// `Cluster::run` spawns one thread per rank, hands each a Comm, and joins
// them. Ranks exchange data exclusively through serialized messages, so
// this substrate exercises the same partitioning/serialization code paths a
// multi-node MPI run would (the substitution is documented in DESIGN.md).
//
// Failure semantics: if any rank throws, the cluster aborts — blocked
// receivers wake with ClusterAborted — and the first root-cause error is
// reported in the result. This models job failure on a real cluster and is
// how the Eden sgemm buffer-overflow result (paper §4.3) is reproduced.

#include <functional>
#include <string>

#include "net/comm.hpp"

namespace triolet::net {

struct ClusterOptions {
  /// 0 = unbounded. Nonzero models a runtime with bounded message buffers.
  std::size_t max_message_bytes = 0;
  /// Transport backend ("ring", "mailbox", or "" = TRIOLET_TRANSPORT env,
  /// default ring). See net/transport.hpp.
  std::string transport{};
  /// Eager/rendezvous threshold; -1 = TRIOLET_EAGER_BYTES env, default
  /// kDefaultEagerBytes.
  long eager_bytes = -1;
};

struct ClusterResult {
  bool ok = true;
  std::string error;  // first root-cause error when !ok

  /// Aggregate traffic over all ranks.
  CommStats total_stats;
};

class Cluster {
 public:
  /// Runs `body(comm)` on `nranks` SPMD rank threads and joins them.
  static ClusterResult run(int nranks, const std::function<void(Comm&)>& body,
                           const ClusterOptions& options = {});

  /// Like run(), but treats failure as a programming error.
  static CommStats run_or_abort(int nranks,
                                const std::function<void(Comm&)>& body,
                                const ClusterOptions& options = {});
};

}  // namespace triolet::net
