#pragma once

// Communicator: the MPI-analogue endpoint each SPMD rank holds.
//
// Point-to-point send/recv move serialized byte payloads between per-rank
// mailboxes; collectives (barrier, broadcast, scatter, gather, reduce,
// allreduce) are layered on point-to-point with reserved tags, like a
// minimal MPI implementation. Reductions combine partial results in rank
// order so floating-point results are bitwise deterministic.

#include <cstdint>
#include <optional>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/mailbox.hpp"
#include "serial/checksum.hpp"
#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet::net {

/// User tags must stay below this; larger tags are reserved for collectives.
inline constexpr int kFirstReservedTag = 1 << 28;

struct CommStats {
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_received = 0;
};

/// Shared state of one in-process cluster (owned by Cluster, referenced by
/// every Comm).
struct ClusterState {
  explicit ClusterState(int nranks, std::size_t max_message_bytes);

  std::vector<std::unique_ptr<Mailbox>> inboxes;
  std::atomic<bool> aborted{false};

  void abort_all();
};

class Comm {
 public:
  Comm(int rank, ClusterState* state) : rank_(rank), state_(state) {}

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(state_->inboxes.size()); }

  // -- point to point ---------------------------------------------------------

  /// Sends raw bytes to `dst` under `tag`.
  void send_bytes(int dst, int tag, std::vector<std::byte> payload);

  /// Serializes `v` and sends it.
  template <typename T>
  void send(int dst, int tag, const T& v) {
    send_bytes(dst, tag, serial::to_bytes(v));
  }

  /// Blocking receive matching (src, tag); wildcards kAnySource / kAnyTag.
  Message recv_message(int src, int tag);

  /// Blocking typed receive.
  template <typename T>
  T recv(int src, int tag) {
    Message m = recv_message(src, tag);
    return serial::from_bytes<T>(m.payload);
  }

  /// Non-blocking receive: returns the matching message if one is already
  /// queued (the MPI_Iprobe + MPI_Recv idiom).
  std::optional<Message> try_recv_message(int src, int tag);

  template <typename T>
  std::optional<T> try_recv(int src, int tag) {
    auto m = try_recv_message(src, tag);
    if (!m) return std::nullopt;
    return serial::from_bytes<T>(m->payload);
  }

  /// Deadlock-free pairwise exchange (MPI_Sendrecv): sends `v` to `peer`
  /// and receives the peer's value under the same tag. Safe because sends
  /// are buffered.
  template <typename T>
  T exchange(int peer, int tag, const T& v) {
    send(peer, tag, v);
    return recv<T>(peer, tag);
  }

  // -- collectives ------------------------------------------------------------
  // All ranks must call each collective in the same order.

  void barrier();

  /// Root's value is copied to everyone.
  template <typename T>
  void broadcast(T& v, int root = 0) {
    if (rank_ == root) {
      auto bytes = serial::to_bytes(v);
      for (int r = 0; r < size(); ++r) {
        if (r != root) send_bytes(r, kTagBroadcast, bytes);
      }
    } else {
      Message m = recv_message(root, kTagBroadcast);
      v = serial::from_bytes<T>(m.payload);
    }
  }

  /// Root receives everyone's value, indexed by rank.
  template <typename T>
  std::vector<T> gather(const T& v, int root = 0) {
    if (rank_ == root) {
      std::vector<T> all(static_cast<std::size_t>(size()));
      all[static_cast<std::size_t>(root)] = v;
      for (int r = 0; r < size(); ++r) {
        if (r != root) all[static_cast<std::size_t>(r)] = recv<T>(r, kTagGather);
      }
      return all;
    }
    send(root, kTagGather, v);
    return {};
  }

  /// Root supplies one item per rank; each rank gets its own.
  template <typename T>
  T scatter(const std::vector<T>& items, int root = 0) {
    if (rank_ == root) {
      TRIOLET_CHECK(static_cast<int>(items.size()) == size(),
                    "scatter needs one item per rank");
      for (int r = 0; r < size(); ++r) {
        if (r != root) send(r, kTagScatter, items[static_cast<std::size_t>(r)]);
      }
      return items[static_cast<std::size_t>(root)];
    }
    return recv<T>(root, kTagScatter);
  }

  /// Combines all ranks' values at root, folding in ascending rank order
  /// (deterministic floating point). Non-root ranks get a default T.
  template <typename T, typename Op>
  T reduce(const T& v, Op op, int root = 0) {
    std::vector<T> all = gather(v, root);
    if (rank_ != root) return T{};
    T acc = std::move(all[0]);
    for (std::size_t r = 1; r < all.size(); ++r) {
      acc = op(std::move(acc), std::move(all[r]));
    }
    return acc;
  }

  /// reduce + broadcast.
  template <typename T, typename Op>
  T allreduce(const T& v, Op op) {
    T acc = reduce(v, op, 0);
    broadcast(acc, 0);
    return acc;
  }

  /// Every rank receives everyone's value, indexed by rank (MPI_Allgather).
  template <typename T>
  std::vector<T> allgather(const T& v) {
    std::vector<T> all = gather(v, 0);
    broadcast(all, 0);
    return all;
  }

  const CommStats& stats() const { return stats_; }

  // -- sub-communicators --------------------------------------------------------

  /// Handle to a subgroup of ranks created by split(); relays typed
  /// messages and group collectives through the parent communicator.
  class Group;

  /// Partitions ranks by `color` (MPI_Comm_split with key = rank): all
  /// ranks must call it collectively; each receives the group of its color,
  /// with group ranks assigned in ascending world-rank order.
  Group split(int color);

 private:
  static constexpr int kTagBarrierUp = kFirstReservedTag + 0;
  static constexpr int kTagBarrierDown = kFirstReservedTag + 1;
  static constexpr int kTagBroadcast = kFirstReservedTag + 2;
  static constexpr int kTagGather = kFirstReservedTag + 3;
  static constexpr int kTagScatter = kFirstReservedTag + 4;

  int rank_;
  ClusterState* state_;
  CommStats stats_;
};

/// A subgroup view over a parent communicator: translates group ranks to
/// world ranks and runs group-scoped point-to-point and collectives. Tags
/// are offset into a reserved band so group traffic cannot collide with the
/// parent's user tags.
class Comm::Group {
 public:
  Group(Comm* parent, std::vector<int> members, int my_group_rank)
      : parent_(parent),
        members_(std::move(members)),
        rank_(my_group_rank) {}

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  int world_rank(int group_rank) const {
    TRIOLET_ASSERT(group_rank >= 0 && group_rank < size());
    return members_[static_cast<std::size_t>(group_rank)];
  }

  template <typename T>
  void send(int dst, int tag, const T& v) {
    parent_->send(world_rank(dst), group_tag(tag), v);
  }

  template <typename T>
  T recv(int src, int tag) {
    return parent_->recv<T>(world_rank(src), group_tag(tag));
  }

  /// Group-scoped reduce to group rank 0, folding in group-rank order.
  template <typename T, typename Op>
  T reduce(const T& v, Op op) {
    if (rank_ == 0) {
      T acc = v;
      for (int r = 1; r < size(); ++r) {
        acc = op(std::move(acc), recv<T>(r, kGroupReduce));
      }
      return acc;
    }
    send(0, kGroupReduce, v);
    return T{};
  }

  /// Group-scoped broadcast from group rank 0.
  template <typename T>
  void broadcast(T& v) {
    if (rank_ == 0) {
      for (int r = 1; r < size(); ++r) send(r, kGroupBcast, v);
    } else {
      v = recv<T>(0, kGroupBcast);
    }
  }

 private:
  // Topmost two tags of the group band are reserved for the collectives.
  static constexpr int kGroupReduce = (1 << 20) - 2;
  static constexpr int kGroupBcast = (1 << 20) - 1;
  static int group_tag(int tag) {
    TRIOLET_CHECK(tag >= 0 && tag < (1 << 20), "group tag out of range");
    return (1 << 27) + tag;  // still below kFirstReservedTag
  }

  Comm* parent_;
  std::vector<int> members_;
  int rank_;
};

}  // namespace triolet::net
