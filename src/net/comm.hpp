#pragma once

// Communicator: the MPI-analogue endpoint each SPMD rank holds.
//
// Point-to-point send/recv move serialized byte payloads between per-rank
// mailboxes; collectives are layered on point-to-point with reserved tag
// bands, like a minimal MPI implementation. All collectives run over
// logarithmic communication trees (docs/INTERNALS.md "Collective
// algorithms"):
//
//   broadcast / reduce    binomial tree rooted at `root`
//   gather / scatter      binomial tree moving contiguous subtree bundles
//   allreduce / allgather recursive doubling, with a fold-in/fold-out step
//                         for non-power-of-two rank counts
//   barrier               dissemination (each round r signals rank + 2^r)
//
// so the critical path of every collective is O(log P) messages instead of
// the O(P) a root-centric loop would serialize.
//
// Determinism contract: reductions combine partials in a *fixed tree order*
// (each internal node computes op(lower-rank block, higher-rank block)), so
// floating-point results are bitwise reproducible run-to-run and, for
// allreduce, bitwise identical on every rank. The combine *parenthesization*
// differs from the old linear rank-order fold; `reduce_ordered` keeps the
// linear left fold for callers that assert the historical rounding.

#include <array>
#include <cstdint>
#include <mutex>
#include <optional>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/progress.hpp"
#include "net/transport.hpp"
#include "net/slice_cache.hpp"
#include "net/tags.hpp"
#include "serial/checksum.hpp"
#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet::net {
// Reserved tag constants (kFirstReservedTag, kTagSchedBand / Request /
// Grant, kTagAsyncBand, kTagGroupBand) live in net/tags.hpp, one registry
// audited by assert_tag_bands_disjoint() at Cluster startup.

/// Collective kinds tracked by the per-collective traffic counters.
enum class Collective : int {
  kBarrier = 0,
  kBroadcast,
  kGather,
  kScatter,
  kReduce,
  kAllreduce,
  kAllgather,
};
inline constexpr std::size_t kNumCollectives = 7;

/// Traffic attributed to one collective kind on one rank. Messages a
/// collective relays on behalf of other ranks (tree forwarding) count here
/// too, so `messages_sent` of the busiest rank bounds the collective's
/// critical-path depth.
struct CollectiveStats {
  std::int64_t calls = 0;
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_received = 0;

  CollectiveStats& operator+=(const CollectiveStats& o) {
    calls += o.calls;
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    return *this;
  }
  CollectiveStats& operator-=(const CollectiveStats& o) {
    calls -= o.calls;
    messages_sent -= o.messages_sent;
    bytes_sent -= o.bytes_sent;
    messages_received -= o.messages_received;
    bytes_received -= o.bytes_received;
    return *this;
  }
};

inline CollectiveStats operator-(CollectiveStats a, const CollectiveStats& b) {
  a -= b;
  return a;
}

/// Traffic and load attributed to the demand-driven chunk scheduler on one
/// rank (src/sched/ fills these in; see docs/INTERNALS.md "Distributed
/// scheduling"). Control traffic is the request/grant protocol itself —
/// task payloads inside grants are *not* control bytes.
struct SchedStats {
  std::int64_t requests_sent = 0;      // chunk requests this rank issued
  std::int64_t grants_served = 0;      // work grants issued (root only)
  std::int64_t grants_received = 0;    // work grants this rank executed
  std::int64_t chunks_executed = 0;    // grants + root self-issued chunks
  std::int64_t items_executed = 0;     // outer-domain units actually run here
  std::int64_t control_messages = 0;   // requests + grant envelopes
  std::int64_t control_bytes = 0;      // request payloads + grant headers
  double busy_seconds = 0.0;           // executing granted work
  double idle_seconds = 0.0;           // waiting for a grant (steal latency)
  std::int64_t steal_waits = 0;        // number of request->grant waits

  /// Streaming grant execution (SchedOptions::streaming): grants handed to
  /// the rank's thread pool instead of run inline, and the portion of grant
  /// wait time during which the pool still had streamed work in flight —
  /// the "busy while receiving" overlap the two-level pipeline buys.
  std::int64_t streamed_grants = 0;
  double overlap_seconds = 0.0;

  /// Receiver-side grant payload accounting (the data a grant carried, as
  /// opposed to control_bytes): total serialized payload bytes of received
  /// work grants and the outer-domain units those grants covered. Their
  /// ratio is the measured bytes-per-item coefficient the autotuner feeds
  /// into sim::calibrate_from.
  std::int64_t grant_payload_bytes = 0;
  std::int64_t granted_items = 0;

  SchedStats& operator+=(const SchedStats& o) {
    requests_sent += o.requests_sent;
    grants_served += o.grants_served;
    grants_received += o.grants_received;
    chunks_executed += o.chunks_executed;
    items_executed += o.items_executed;
    control_messages += o.control_messages;
    control_bytes += o.control_bytes;
    busy_seconds += o.busy_seconds;
    idle_seconds += o.idle_seconds;
    steal_waits += o.steal_waits;
    streamed_grants += o.streamed_grants;
    overlap_seconds += o.overlap_seconds;
    grant_payload_bytes += o.grant_payload_bytes;
    granted_items += o.granted_items;
    return *this;
  }
  SchedStats& operator-=(const SchedStats& o) {
    requests_sent -= o.requests_sent;
    grants_served -= o.grants_served;
    grants_received -= o.grants_received;
    chunks_executed -= o.chunks_executed;
    items_executed -= o.items_executed;
    control_messages -= o.control_messages;
    control_bytes -= o.control_bytes;
    busy_seconds -= o.busy_seconds;
    idle_seconds -= o.idle_seconds;
    steal_waits -= o.steal_waits;
    streamed_grants -= o.streamed_grants;
    overlap_seconds -= o.overlap_seconds;
    grant_payload_bytes -= o.grant_payload_bytes;
    granted_items -= o.granted_items;
    return *this;
  }
};

inline SchedStats operator-(SchedStats a, const SchedStats& b) {
  a -= b;
  return a;
}

/// Intra-node thread-pool counters mirrored from runtime::PoolStats (net
/// cannot depend on runtime, so the fields are duplicated). Scheduled
/// skeletons charge the pool-counter *delta* of each run_chunks call here,
/// so per-rank steal/park/wake behavior shows up next to the protocol
/// traffic it serves.
struct NodePoolStats {
  std::int64_t tasks_executed = 0;
  std::int64_t tasks_stolen = 0;
  std::int64_t splits = 0;
  std::int64_t steal_attempts = 0;
  std::int64_t parks = 0;
  std::int64_t wakes = 0;

  NodePoolStats& operator+=(const NodePoolStats& o) {
    tasks_executed += o.tasks_executed;
    tasks_stolen += o.tasks_stolen;
    splits += o.splits;
    steal_attempts += o.steal_attempts;
    parks += o.parks;
    wakes += o.wakes;
    return *this;
  }
  NodePoolStats& operator-=(const NodePoolStats& o) {
    tasks_executed -= o.tasks_executed;
    tasks_stolen -= o.tasks_stolen;
    splits -= o.splits;
    steal_attempts -= o.steal_attempts;
    parks -= o.parks;
    wakes -= o.wakes;
    return *this;
  }
};

inline NodePoolStats operator-(NodePoolStats a, const NodePoolStats& b) {
  a -= b;
  return a;
}

/// Fused-view and halo-exchange attribution (src/dist/ views + stencils).
/// view_* counts leaf-slice payloads a *composite* resident source (zip /
/// slice / transform over resident leaves, or a segmented source) replaced
/// with residency tokens — the bytes a materializing pipeline would have
/// shipped per round. halo_* counts ghost-cell traffic of
/// dist::halo_exchange, and halo_overlap_seconds is interior compute that
/// ran while neighbor exchanges were in flight.
struct ViewStats {
  std::int64_t view_tokens = 0;         // leaf slices shipped as tokens
  std::int64_t view_bytes_avoided = 0;  // payload bytes those tokens replaced
  std::int64_t halo_exchanges = 0;      // halo_exchange rounds on this rank
  std::int64_t halo_messages = 0;       // boundary messages sent
  std::int64_t halo_bytes = 0;          // boundary payload bytes sent
  std::int64_t ghost_cells = 0;         // ghost cells received
  double halo_overlap_seconds = 0.0;    // interior compute under exchange

  ViewStats& operator+=(const ViewStats& o) {
    view_tokens += o.view_tokens;
    view_bytes_avoided += o.view_bytes_avoided;
    halo_exchanges += o.halo_exchanges;
    halo_messages += o.halo_messages;
    halo_bytes += o.halo_bytes;
    ghost_cells += o.ghost_cells;
    halo_overlap_seconds += o.halo_overlap_seconds;
    return *this;
  }
  ViewStats& operator-=(const ViewStats& o) {
    view_tokens -= o.view_tokens;
    view_bytes_avoided -= o.view_bytes_avoided;
    halo_exchanges -= o.halo_exchanges;
    halo_messages -= o.halo_messages;
    halo_bytes -= o.halo_bytes;
    ghost_cells -= o.ghost_cells;
    halo_overlap_seconds -= o.halo_overlap_seconds;
    return *this;
  }
};

inline ViewStats operator-(ViewStats a, const ViewStats& b) {
  a -= b;
  return a;
}

/// Messaging data-plane counters (the snapshot image of the transport's
/// MsgCounters shards): protocol split and buffer-pool behavior. After
/// warmup, pool_misses staying flat is the zero-steady-state-allocation
/// property; ring_full_stalls counts sends that overflowed a full ring into
/// the (ordered, unbounded) overflow lane.
struct MsgStats {
  std::int64_t eager_msgs = 0;        // payloads copied into pooled slabs
  std::int64_t rendezvous_msgs = 0;   // payloads handed off whole
  std::int64_t pool_hits = 0;         // slab allocations served by freelists
  std::int64_t pool_misses = 0;       // slab allocations that hit the heap
  std::int64_t ring_full_stalls = 0;  // sends diverted to the overflow lane

  MsgStats& operator+=(const MsgStats& o) {
    eager_msgs += o.eager_msgs;
    rendezvous_msgs += o.rendezvous_msgs;
    pool_hits += o.pool_hits;
    pool_misses += o.pool_misses;
    ring_full_stalls += o.ring_full_stalls;
    return *this;
  }
  MsgStats& operator-=(const MsgStats& o) {
    eager_msgs -= o.eager_msgs;
    rendezvous_msgs -= o.rendezvous_msgs;
    pool_hits -= o.pool_hits;
    pool_misses -= o.pool_misses;
    ring_full_stalls -= o.ring_full_stalls;
    return *this;
  }
};

inline MsgStats operator-(MsgStats a, const MsgStats& b) {
  a -= b;
  return a;
}

struct CommStats {
  std::int64_t messages_sent = 0;
  std::int64_t bytes_sent = 0;
  std::int64_t messages_received = 0;
  std::int64_t bytes_received = 0;

  /// Of bytes_sent: payload bytes that travelled as borrowed zero-copy
  /// segments (large trivially-copyable array spans, copied once straight
  /// into the delivered payload) vs. bytes staged through the serializer's
  /// copy stream. bytes_zero_copy + bytes_copied == bytes_sent.
  std::int64_t bytes_zero_copy = 0;
  std::int64_t bytes_copied = 0;

  /// Per-collective breakdown, indexed by Collective. Traffic of a nested
  /// collective (e.g. the allgather inside split()) is attributed to the
  /// outermost one.
  std::array<CollectiveStats, kNumCollectives> collectives{};

  /// Demand-driven scheduler attribution (requests/grants/busy/idle).
  SchedStats sched{};

  /// Intra-node pool counters for work this rank's scheduled skeletons ran.
  NodePoolStats pool{};

  /// Slice-residency attribution: tokens sent instead of payloads,
  /// bytes_avoided, cache hits/misses/evictions (net/slice_cache.hpp).
  ResidencyStats residency{};

  /// Fused distributed views and halo-exchange attribution.
  ViewStats views{};

  /// Messaging data-plane counters (eager/rendezvous split, pool behavior).
  MsgStats msg{};

  const CollectiveStats& collective(Collective c) const {
    return collectives[static_cast<std::size_t>(c)];
  }

  CommStats& operator+=(const CommStats& o) {
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    messages_received += o.messages_received;
    bytes_received += o.bytes_received;
    bytes_zero_copy += o.bytes_zero_copy;
    bytes_copied += o.bytes_copied;
    for (std::size_t i = 0; i < kNumCollectives; ++i) {
      collectives[i] += o.collectives[i];
    }
    sched += o.sched;
    pool += o.pool;
    residency += o.residency;
    views += o.views;
    msg += o.msg;
    return *this;
  }
  /// Delta subtraction: `after - before` of two Comm::snapshot_stats()
  /// snapshots is the traffic of everything in between — the per-round
  /// attribution primitive the autotuner (and the benches) consume instead
  /// of hand-tracking individual counters.
  CommStats& operator-=(const CommStats& o) {
    messages_sent -= o.messages_sent;
    bytes_sent -= o.bytes_sent;
    messages_received -= o.messages_received;
    bytes_received -= o.bytes_received;
    bytes_zero_copy -= o.bytes_zero_copy;
    bytes_copied -= o.bytes_copied;
    for (std::size_t i = 0; i < kNumCollectives; ++i) {
      collectives[i] -= o.collectives[i];
    }
    sched -= o.sched;
    pool -= o.pool;
    residency -= o.residency;
    views -= o.views;
    msg -= o.msg;
    return *this;
  }
};

inline CommStats operator-(CommStats a, const CommStats& b) {
  a -= b;
  return a;
}

// Stat structs travel in autotuner round samples (Comm::allgather of
// per-rank deltas) and in bench gathers; declare their field lists so the
// generic aggregate codec applies.
TRIOLET_SERIALIZE_FIELDS(CollectiveStats, calls, messages_sent, bytes_sent,
                         messages_received, bytes_received)
TRIOLET_SERIALIZE_FIELDS(SchedStats, requests_sent, grants_served,
                         grants_received, chunks_executed, items_executed,
                         control_messages, control_bytes, busy_seconds,
                         idle_seconds, steal_waits, streamed_grants,
                         overlap_seconds, grant_payload_bytes, granted_items)
TRIOLET_SERIALIZE_FIELDS(NodePoolStats, tasks_executed, tasks_stolen, splits,
                         steal_attempts, parks, wakes)
TRIOLET_SERIALIZE_FIELDS(ResidencyStats, tokens_sent, bytes_avoided,
                         slices_inlined, bytes_inlined, cache_hits,
                         cache_misses, checksum_failures, fetches, evictions,
                         bytes_inserted)
TRIOLET_SERIALIZE_FIELDS(ViewStats, view_tokens, view_bytes_avoided,
                         halo_exchanges, halo_messages, halo_bytes,
                         ghost_cells, halo_overlap_seconds)
TRIOLET_SERIALIZE_FIELDS(MsgStats, eager_msgs, rendezvous_msgs, pool_hits,
                         pool_misses, ring_full_stalls)
TRIOLET_SERIALIZE_FIELDS(CommStats, messages_sent, bytes_sent,
                         messages_received, bytes_received, bytes_zero_copy,
                         bytes_copied, collectives, sched, pool, residency,
                         views, msg)

/// Shared state of one in-process cluster (owned by Cluster, referenced by
/// every Comm).
struct ClusterState {
  /// Classic form: backend and eager threshold resolve from the
  /// environment (TRIOLET_TRANSPORT / TRIOLET_EAGER_BYTES).
  explicit ClusterState(int nranks, std::size_t max_message_bytes);
  ClusterState(int nranks, const TransportOptions& transport_options);

  int nranks = 0;
  std::unique_ptr<Transport> transport;
  std::atomic<bool> aborted{false};

  void abort_all();

  /// Wakes every blocked receiver *without* raising the cluster abort flag:
  /// the service layer uses this after raising a per-job abort flag, so the
  /// failing job's waiters throw ClusterAborted while unrelated jobs
  /// re-check their own flags and go back to sleep.
  void interrupt_all();
};

class PendingRecv;

class Comm {
 public:
  /// The two-argument form is the classic single-job communicator. The
  /// service layer (src/svc/) passes the extra arguments: `tags` remaps the
  /// whole canonical tag space into the job's leased band (net/tags.hpp
  /// TagMap), `shared_residency` points at the rank's manager-owned slice
  /// cache so residency survives across jobs, and `job_aborted` is the
  /// job group's private abort flag — raised on a job failure so only that
  /// group's blocked receives throw, not the whole service.
  explicit Comm(int rank, ClusterState* state, TagMap tags = {},
                Residency* shared_residency = nullptr,
                std::atomic<bool>* job_aborted = nullptr)
      : rank_(rank),
        state_(state),
        tags_(tags),
        // Attached eagerly so the progress engine can use the cached
        // endpoint without racing a lazy initialization.
        endpoint_(&state->transport->attach(rank, tags.base)),
        shared_residency_(shared_residency),
        job_aborted_(job_aborted) {}

  int rank() const { return rank_; }
  int size() const { return state_->nranks; }

  /// This Comm's tag map (identity outside the service layer).
  const TagMap& tag_map() const { return tags_; }

  /// Stable identity of the tag lease (0 outside the service layer): what
  /// the sched layer folds into tune keys so concurrent jobs' tuners and
  /// models never share state by accident.
  std::uint64_t job_key() const {
    return static_cast<std::uint64_t>(static_cast<std::uint32_t>(tags_.base));
  }

  // -- point to point ---------------------------------------------------------

  /// Sends raw bytes to `dst` under `tag`.
  void send_bytes(int dst, int tag, std::vector<std::byte> payload);

  /// Serializes `v` and sends it. Large trivially-copyable array spans in
  /// `v` take the zero-copy path: they are gathered straight into the
  /// delivered payload instead of being staged through the serializer
  /// (counted in CommStats::bytes_zero_copy).
  template <typename T>
  void send(int dst, int tag, const T& v) {
    serial::SegmentedBytes sg = serial::to_segments(v);
    send_segments(dst, tag, sg);
  }

  /// Sends a pre-built scatter-gather payload (blocking; the borrowed
  /// segments only need to live for the duration of the call).
  void send_segments(int dst, int tag, serial::SegmentedBytes sg);

  // -- asynchronous point to point --------------------------------------------
  //
  // isend hands the value to the per-rank progress engine: serialization,
  // checksum, and delivery run on the engine thread, overlapping with the
  // caller's compute. Posting order is delivery order (the engine is FIFO),
  // and blocking sends flush the engine first, so async and sync sends to
  // the same (dst, tag) can never reorder. irecv is a posted match: wait()
  // blocks for it, test() polls, wait_any races several. All handles are
  // cancelled with ClusterAborted if the cluster aborts.

  /// Asynchronous typed send: takes `v` by value (moved into the engine)
  /// so the caller's buffers are immediately reusable. Dropping the handle
  /// detaches the send; its errors resurface on the next flush.
  template <typename T>
  PendingSend isend(int dst, int tag, T v) {
    check_dst(dst);
    auto value = std::make_shared<T>(std::move(v));
    return PendingSend(engine().post([this, dst, tag, value] {
      deliver_segments(dst, tag, serial::to_segments(*value),
                       /*collective=*/-1, kEngineShard);
    }));
  }

  /// Asynchronous raw-bytes send.
  PendingSend isend_bytes(int dst, int tag, std::vector<std::byte> payload);

  /// Asynchronous send of a pre-built scatter-gather payload: the gather of
  /// borrowed segments runs on the engine thread (overlapping the caller's
  /// compute), and `keepalive` is held until delivery so whatever the
  /// borrowed spans reference stays alive. This is how residency-aware
  /// senders ship an eagerly-serialized payload without losing overlap.
  PendingSend isend_segments(int dst, int tag, serial::SegmentedBytes sg,
                             std::shared_ptr<const void> keepalive);

  /// Posts an asynchronous receive for (src, tag); wildcards as in recv.
  PendingRecv irecv(int src, int tag);

  /// Blocks until every engine-posted operation has completed; rethrows
  /// the first error from detached sends. Called implicitly by blocking
  /// sends (ordering) and by Cluster::run when the rank body returns.
  void flush_async() {
    if (engine_) engine_->flush();
  }

  /// flush_async for the shutdown path: never throws.
  void quiesce() noexcept {
    try {
      flush_async();
    } catch (...) {
      // The first root-cause error was already recorded by the rank body
      // or will be surfaced by the cluster's abort machinery.
    }
  }

  /// Blocking receive matching (src, tag); wildcards kAnySource / kAnyTag.
  Message recv_message(int src, int tag);

  /// Blocking typed receive.
  template <typename T>
  T recv(int src, int tag) {
    Message m = recv_message(src, tag);
    return serial::from_bytes<T>(m.payload);
  }

  /// Non-blocking receive: returns the matching message if one is already
  /// queued (the MPI_Iprobe + MPI_Recv idiom).
  std::optional<Message> try_recv_message(int src, int tag);

  template <typename T>
  std::optional<T> try_recv(int src, int tag) {
    auto m = try_recv_message(src, tag);
    if (!m) return std::nullopt;
    return serial::from_bytes<T>(m->payload);
  }

  /// Deadlock-free pairwise exchange (MPI_Sendrecv): sends `v` to `peer`
  /// and receives the peer's value under the same tag. Safe because sends
  /// are buffered.
  template <typename T>
  T exchange(int peer, int tag, const T& v) {
    send(peer, tag, v);
    return recv<T>(peer, tag);
  }

  // -- collectives ------------------------------------------------------------
  // All ranks must call each collective in the same order.

  /// Dissemination barrier: round r signals rank + 2^r (mod P), so every
  /// rank is released after ceil(log2 P) rounds.
  void barrier();

  /// Root's value is copied to everyone down a binomial tree: interior
  /// ranks forward the serialized payload to their subtree children, so no
  /// rank sends more than ceil(log2 P) messages.
  template <typename T>
  void broadcast(T& v, int root = 0) {
    CollectiveScope scope(*this, Collective::kBroadcast);
    if (size() == 1) return;
    std::vector<std::byte> bytes;
    if (rank_ == root) bytes = serial::to_bytes(v);
    bcast_bytes(bytes, root, kTagBroadcast);
    if (rank_ != root) v = serial::from_bytes<T>(bytes);
  }

  /// Root receives everyone's value, indexed by rank. Values climb a
  /// binomial tree as contiguous subtree bundles: the root merges
  /// ceil(log2 P) bundles instead of accepting P-1 sequential messages.
  template <typename T>
  std::vector<T> gather(const T& v, int root = 0) {
    CollectiveScope scope(*this, Collective::kGather);
    const int p = size();
    if (p == 1) return {v};
    const int vrank = (rank_ - root + p) % p;
    // `sub` holds values for vranks [vrank, vrank + sub.size()), contiguous.
    std::vector<T> sub;
    sub.push_back(v);
    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
      if (vrank & mask) {
        send(world_of(vrank - mask, root), kTagGather + round, sub);
        return {};
      }
      if (vrank + mask < p) {
        auto child = recv<std::vector<T>>(world_of(vrank + mask, root),
                                          kTagGather + round);
        sub.insert(sub.end(), std::make_move_iterator(child.begin()),
                   std::make_move_iterator(child.end()));
      }
    }
    // vrank 0 == root: un-rotate from vrank order to world-rank order.
    std::vector<T> all(static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      all[static_cast<std::size_t>((i + root) % p)] =
          std::move(sub[static_cast<std::size_t>(i)]);
    }
    return all;
  }

  /// Root supplies one item per rank; each rank gets its own. Items travel
  /// down the binomial broadcast tree as subtree bundles that halve at each
  /// level, so the root sends ceil(log2 P) bundles.
  template <typename T>
  T scatter(const std::vector<T>& items, int root = 0) {
    CollectiveScope scope(*this, Collective::kScatter);
    const int p = size();
    if (rank_ == root) {
      TRIOLET_CHECK(static_cast<int>(items.size()) == p,
                    "scatter needs one item per rank");
    }
    if (p == 1) return items[0];
    const int vrank = (rank_ - root + p) % p;
    // `mine[i]` is the item destined for vrank + i.
    std::vector<T> mine;
    int mask = 1, round = 0;
    if (vrank == 0) {
      mine.reserve(static_cast<std::size_t>(p));
      for (int i = 0; i < p; ++i) {
        mine.push_back(items[static_cast<std::size_t>((i + root) % p)]);
      }
      for (; mask < p; mask <<= 1) ++round;
    } else {
      for (; mask < p; mask <<= 1, ++round) {
        if (vrank & mask) {
          mine = recv<std::vector<T>>(world_of(vrank - mask, root),
                                      kTagScatter + round);
          break;
        }
      }
    }
    for (mask >>= 1, --round; mask > 0; mask >>= 1, --round) {
      if (vrank + mask < p && static_cast<int>(mine.size()) > mask) {
        std::vector<T> upper(
            std::make_move_iterator(mine.begin() + mask),
            std::make_move_iterator(mine.end()));
        mine.resize(static_cast<std::size_t>(mask));
        send(world_of(vrank + mask, root), kTagScatter + round, upper);
      }
    }
    return std::move(mine[0]);
  }

  /// Combines all ranks' values at root along a binomial tree. Each
  /// interior node computes op(lower-rank block, higher-rank block) over
  /// contiguous rank blocks, so the combine tree is fixed and results are
  /// bitwise deterministic run-to-run (for associative ops it equals the
  /// linear fold; floating-point parenthesization differs — see
  /// reduce_ordered). Non-root ranks get a default T.
  template <typename T, typename Op>
  T reduce(const T& v, Op op, int root = 0) {
    CollectiveScope scope(*this, Collective::kReduce);
    const int p = size();
    if (p == 1) return v;
    const int vrank = (rank_ - root + p) % p;
    T acc = v;
    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
      if (vrank & mask) {
        send(world_of(vrank - mask, root), kTagReduce + round, acc);
        return T{};
      }
      if (vrank + mask < p) {
        // acc covers [vrank, vrank+mask); the child covers the block above.
        acc = op(std::move(acc), recv<T>(world_of(vrank + mask, root),
                                         kTagReduce + round));
      }
    }
    return acc;
  }

  /// The pre-tree reduction: a strict left fold in ascending rank order,
  /// kept for callers that assert the historical floating-point rounding.
  /// Transport is the tree gather, so the critical path is still
  /// O(log P) messages, but the root receives all P-1 payloads.
  template <typename T, typename Op>
  T reduce_ordered(const T& v, Op op, int root = 0) {
    CollectiveScope scope(*this, Collective::kReduce);
    std::vector<T> all = gather(v, root);
    if (rank_ != root) return T{};
    T acc = std::move(all[0]);
    for (std::size_t r = 1; r < all.size(); ++r) {
      acc = op(std::move(acc), std::move(all[r]));
    }
    return acc;
  }

  /// Recursive-doubling allreduce: ceil(log2 P) pairwise exchange rounds,
  /// preceded (followed) by a fold-in (fold-out) step when P is not a power
  /// of two. Every rank combines blocks in the same fixed order, so all
  /// ranks return bitwise identical results.
  template <typename T, typename Op>
  T allreduce(const T& v, Op op) {
    CollectiveScope scope(*this, Collective::kAllreduce);
    const int p = size();
    if (p == 1) return v;
    int pof2 = 1;
    while (pof2 * 2 <= p) pof2 *= 2;
    const int rem = p - pof2;
    T acc = v;
    // Fold-in: the first 2*rem ranks collapse pairwise so pof2 stay active.
    int newrank;
    if (rank_ < 2 * rem) {
      if (rank_ % 2 == 0) {
        send(rank_ + 1, kTagAllreduce + 0, acc);
        newrank = -1;
      } else {
        acc = op(recv<T>(rank_ - 1, kTagAllreduce + 0), std::move(acc));
        newrank = rank_ / 2;
      }
    } else {
      newrank = rank_ - rem;
    }
    int round = 1;
    if (newrank >= 0) {
      for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
        const int partner_new = newrank ^ mask;
        const int partner =
            partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
        send(partner, kTagAllreduce + round, acc);
        T other = recv<T>(partner, kTagAllreduce + round);
        acc = newrank < partner_new ? op(std::move(acc), std::move(other))
                                    : op(std::move(other), std::move(acc));
      }
    } else {
      for (int mask = 1; mask < pof2; mask <<= 1) ++round;
    }
    // Fold-out: folded ranks receive the final value from their partner.
    if (rank_ < 2 * rem) {
      if (rank_ % 2 == 0) {
        acc = recv<T>(rank_ + 1, kTagAllreduce + round);
      } else {
        send(rank_ - 1, kTagAllreduce + round, acc);
      }
    }
    return acc;
  }

  /// Every rank receives everyone's value, indexed by rank (MPI_Allgather).
  /// Recursive doubling over contiguous rank blocks, with the same
  /// fold-in/fold-out step as allreduce for non-power-of-two P.
  template <typename T>
  std::vector<T> allgather(const T& v) {
    CollectiveScope scope(*this, Collective::kAllgather);
    const int p = size();
    if (p == 1) return {v};
    int pof2 = 1;
    while (pof2 * 2 <= p) pof2 *= 2;
    const int rem = p - pof2;
    // `acc` is a contiguous world-rank block of values.
    std::vector<T> acc;
    int newrank;
    if (rank_ < 2 * rem) {
      if (rank_ % 2 == 0) {
        send(rank_ + 1, kTagAllgather + 0, v);
        newrank = -1;
      } else {
        acc.push_back(recv<T>(rank_ - 1, kTagAllgather + 0));
        acc.push_back(v);
        newrank = rank_ / 2;
      }
    } else {
      acc.push_back(v);
      newrank = rank_ - rem;
    }
    int round = 1;
    if (newrank >= 0) {
      for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
        const int partner_new = newrank ^ mask;
        const int partner =
            partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
        send(partner, kTagAllgather + round, acc);
        auto other = recv<std::vector<T>>(partner, kTagAllgather + round);
        if (newrank < partner_new) {
          acc.insert(acc.end(), std::make_move_iterator(other.begin()),
                     std::make_move_iterator(other.end()));
        } else {
          other.insert(other.end(), std::make_move_iterator(acc.begin()),
                       std::make_move_iterator(acc.end()));
          acc = std::move(other);
        }
      }
    } else {
      for (int mask = 1; mask < pof2; mask <<= 1) ++round;
    }
    if (rank_ < 2 * rem) {
      if (rank_ % 2 == 0) {
        acc = recv<std::vector<T>>(rank_ + 1, kTagAllgather + round);
      } else {
        send(rank_ - 1, kTagAllgather + round, acc);
      }
    }
    return acc;
  }

  /// This rank's counters (an aggregated snapshot; see snapshot_stats).
  CommStats stats() const { return snapshot_stats(); }

  /// Coherent copy of this rank's counters. Send-side traffic is recorded
  /// in per-producing-thread shards of relaxed atomics (rank thread and
  /// progress engine each own one — no lock and no shared cache line on
  /// the send path); the shards are summed into the plain
  /// rank-thread-owned fields here. Two snapshots subtract into the delta
  /// of everything between them: `auto d = comm.snapshot_stats() - before;`
  /// — the per-round attribution the autotuner and the benches are built
  /// on.
  CommStats snapshot_stats() const {
    CommStats out = stats_;
    for (const SendShard& s : send_shards_) {
      out.messages_sent += s.messages_sent.load(std::memory_order_relaxed);
      out.bytes_sent += s.bytes_sent.load(std::memory_order_relaxed);
      out.bytes_zero_copy += s.bytes_zero_copy.load(std::memory_order_relaxed);
      out.bytes_copied += s.bytes_copied.load(std::memory_order_relaxed);
      out.msg.eager_msgs += s.msg.eager_msgs.load(std::memory_order_relaxed);
      out.msg.rendezvous_msgs +=
          s.msg.rendezvous_msgs.load(std::memory_order_relaxed);
      out.msg.pool_hits += s.msg.pool_hits.load(std::memory_order_relaxed);
      out.msg.pool_misses += s.msg.pool_misses.load(std::memory_order_relaxed);
      out.msg.ring_full_stalls +=
          s.msg.ring_full_stalls.load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Mutable scheduler counters: the sched/ layer records its protocol
  /// activity here so cluster-level CommStats aggregation picks it up.
  SchedStats& sched_stats() { return stats_.sched; }

  /// Mutable residency counters (rank-thread only, like sched_stats).
  ResidencyStats& residency_stats() { return stats_.residency; }

  /// Mutable intra-node pool counters (rank-thread only, like sched_stats).
  NodePoolStats& pool_stats() { return stats_.pool; }

  /// Mutable view/halo counters (rank-thread only, like sched_stats).
  ViewStats& view_stats() { return stats_.views; }

  /// Claims the next scheduler epoch for a run_chunks invocation. run_chunks
  /// is collective, so every rank claims the same sequence of epochs and
  /// sender/receiver agree on the epoch's rotated (request, grant) tag pair
  /// (see sched_request_tag in tags.hpp) without negotiating.
  int next_sched_epoch() { return sched_epoch_++; }

  /// Opaque per-Comm state slot for the scheduler layer (rank-thread only).
  /// sched/ keeps its implicit AutoTuner registry here so iterative kAuto
  /// jobs carry measurements across rounds without the caller owning any
  /// state; net stays ignorant of the stored type.
  std::shared_ptr<void>& sched_state() { return sched_state_; }

  // -- slice residency ----------------------------------------------------------

  /// This rank's residency state (receive-side slice cache + per-peer
  /// sender models). Outside the service layer it is created on first use
  /// with the budget captured from slice_cache_budget() and lives as long
  /// as the Comm; under a JobManager it is the manager-owned per-rank
  /// Residency shared by every job on this rank, so cached slices survive
  /// across jobs (guarded by Residency::mu — see net/residency.hpp).
  Residency& residency() {
    if (shared_residency_) return *shared_residency_;
    if (!residency_) {
      residency_ = std::make_unique<Residency>(slice_cache_budget(),
                                               &stats_.residency);
    }
    return *residency_;
  }

  /// False when the slice-cache budget is zero: every sender falls back to
  /// the plain inline/zero-copy path. Must evaluate identically on all
  /// ranks (the budget is process-global).
  bool residency_enabled() { return residency().budget > 0; }

  // -- services -----------------------------------------------------------------
  //
  // A service is a handler for one reserved tag that blocking receives
  // dispatch as a side effect: while this rank waits for its own message,
  // queued service messages (e.g. residency fetch requests from a worker
  // whose cache missed) are handled instead of deadlocking the requester.
  // Handlers run on the rank thread, always listed *before* the user
  // pattern, so a wildcard receive can never steal a service message.

  /// Registers `handler` for (kAnySource, tag). One handler per tag. `tag`
  /// is canonical; it is stored mapped so dispatch matches mapped traffic.
  void set_service(int tag, std::function<void(Message&)> handler);

  /// Removes the handler for `tag` (no-op when absent).
  void clear_service(int tag);

  /// True when a handler is registered for canonical `tag` (idempotent
  /// installation, e.g. the residency fetch service).
  bool has_service(int tag) const;

  /// Drains and dispatches every queued service message without blocking —
  /// for request-polling loops that do not go through a blocking receive.
  void poll_services();

  // -- sub-communicators --------------------------------------------------------

  /// Handle to a subgroup of ranks created by split(); relays typed
  /// messages and group collectives through the parent communicator.
  class Group;

  /// Partitions ranks by `color` (MPI_Comm_split with key = rank): all
  /// ranks must call it collectively; each receives the group of its color,
  /// with group ranks assigned in ascending world-rank order.
  Group split(int color);

 private:
  // Reserved tag layout: one 64-tag band per collective, one tag per tree
  // round within the band, so concurrent rounds of one collective can never
  // be confused even under pathological scheduling.
  static constexpr int kTagBandBits = 6;
  static constexpr int kTagBarrier = kFirstReservedTag + (0 << kTagBandBits);
  static constexpr int kTagBroadcast = kFirstReservedTag + (1 << kTagBandBits);
  static constexpr int kTagGather = kFirstReservedTag + (2 << kTagBandBits);
  static constexpr int kTagScatter = kFirstReservedTag + (3 << kTagBandBits);
  static constexpr int kTagReduce = kFirstReservedTag + (4 << kTagBandBits);
  static constexpr int kTagAllreduce = kFirstReservedTag + (5 << kTagBandBits);
  static constexpr int kTagAllgather = kFirstReservedTag + (6 << kTagBandBits);

  /// RAII attribution of point-to-point traffic to the enclosing
  /// collective; only the outermost collective owns the traffic.
  struct CollectiveScope {
    CollectiveScope(Comm& c, Collective k)
        : comm_(&c), owner_(c.active_collective_ < 0) {
      if (owner_) {
        comm_->active_collective_ = static_cast<int>(k);
        // Rank-thread-only state: collectives run on the rank thread, and
        // the per-collective counters are never touched by the engine.
        comm_->stats_.collectives[static_cast<std::size_t>(k)].calls += 1;
      }
    }
    ~CollectiveScope() {
      if (owner_) comm_->active_collective_ = -1;
    }
    CollectiveScope(const CollectiveScope&) = delete;
    CollectiveScope& operator=(const CollectiveScope&) = delete;

    Comm* comm_;
    bool owner_;
  };

  /// World rank of virtual rank `vrank` in a tree rooted at `root`.
  int world_of(int vrank, int root) const { return (vrank + root) % size(); }

  /// Binomial-tree broadcast of a raw payload (root's `bytes` in, every
  /// rank's `bytes` out).
  void bcast_bytes(std::vector<std::byte>& bytes, int root, int tag_base);

  friend class PendingRecv;

  void check_dst(int dst) const {
    TRIOLET_CHECK(dst >= 0 && dst < size(), "send to invalid rank");
    TRIOLET_CHECK(dst != rank_, "self-sends are not supported; use local data");
  }

  /// The per-rank progress engine, started on first use.
  ProgressEngine& engine() {
    if (!engine_) {
      engine_ = std::make_unique<ProgressEngine>(&state_->aborted);
    }
    return *engine_;
  }

  /// Hands a scatter-gather payload to the transport endpoint for `dst`.
  /// Runs on the rank thread (blocking sends, shard = kRankShard) or the
  /// engine thread (isends, shard = kEngineShard); each caller passes its
  /// own shard so send accounting is plain relaxed atomics, never a lock.
  void deliver_segments(int dst, int tag, serial::SegmentedBytes sg,
                        int collective, std::size_t shard = kRankShard);

  friend std::size_t wait_any(std::span<PendingRecv> recvs);

  /// Checksum + receive-side accounting shared by every recv flavor.
  /// Service traffic passes attribute_collective = false so fetch requests
  /// handled inside a collective are not counted as collective traffic.
  void finish_recv(const Message& m, bool attribute_collective = true);

  /// Blocks for the earliest message matching a service pattern or one of
  /// `user` (in that priority for a single message); dispatches service
  /// messages in place and loops, returns the first user match with
  /// `which_user` set to its index in `user`.
  Message pop_with_services(std::span<const std::pair<int, int>> user,
                            std::size_t& which_user);

  /// Runs the handler for services_[idx] with collective attribution
  /// suspended.
  void dispatch_service(std::size_t idx, Message& m);

  int rank_;
  ClusterState* state_;
  /// Canonical-to-leased-band tag map; immutable after construction, so
  /// mapping is safe from both the rank thread and the progress engine.
  TagMap tags_;
  /// The transport endpoint for this rank in its tag band, attached eagerly
  /// in the constructor so the engine thread never races a lazy init.
  Transport::Endpoint* endpoint_ = nullptr;
  /// Manager-owned per-rank residency (null outside the service layer).
  Residency* shared_residency_ = nullptr;
  /// Per-job-group abort flag (null outside the service layer).
  std::atomic<bool>* job_aborted_ = nullptr;
  /// Rank-thread-only stats (receives, collectives, views, residency).
  /// Send-side counters live in send_shards_ because the progress engine
  /// records isend traffic concurrently with the rank thread's own sends.
  CommStats stats_;

  static constexpr std::size_t kRankShard = 0;
  static constexpr std::size_t kEngineShard = 1;
  /// One shard per producing thread. Index with kRankShard / kEngineShard;
  /// snapshot_stats() sums both into the plain CommStats mirror, so no
  /// lock ever sits on the send path.
  struct alignas(64) SendShard {
    std::atomic<std::int64_t> messages_sent{0};
    std::atomic<std::int64_t> bytes_sent{0};
    std::atomic<std::int64_t> bytes_zero_copy{0};
    std::atomic<std::int64_t> bytes_copied{0};
    MsgCounters msg;
  };
  SendShard send_shards_[2];
  std::unique_ptr<ProgressEngine> engine_;
  std::unique_ptr<Residency> residency_;
  /// (tag, handler) pairs, rank-thread only.
  std::vector<std::pair<int, std::function<void(Message&)>>> services_;

  /// Scheduler epoch counter (rank-thread only): one epoch per collective
  /// run_chunks call, advanced identically on every rank.
  int sched_epoch_ = 0;
  /// See sched_state(): opaque scheduler-layer state (rank-thread only).
  std::shared_ptr<void> sched_state_;
  int active_collective_ = -1;
};

/// Waitable handle for one posted receive. Matching is pull-based: the
/// message is claimed from the mailbox at wait()/test() time, so posting is
/// free and several handles may race via wait_any. Completion is sticky —
/// after the first successful wait()/test(), message() returns the match.
class PendingRecv {
 public:
  PendingRecv() = default;

  bool valid() const { return comm_ != nullptr; }
  bool completed() const { return completed_; }

  /// Blocks until the match arrives (throws ClusterAborted on abort).
  Message& wait() {
    TRIOLET_CHECK(valid(), "wait on an empty PendingRecv");
    if (!completed_) {
      msg_ = comm_->recv_message(src_, tag_);
      completed_ = true;
    }
    return msg_;
  }

  /// Claims the match if it is already queued.
  bool test() {
    TRIOLET_CHECK(valid(), "test on an empty PendingRecv");
    if (completed_) return true;
    auto m = comm_->try_recv_message(src_, tag_);
    if (!m) return false;
    msg_ = std::move(*m);
    completed_ = true;
    return true;
  }

  /// Blocking typed receive: wait() + deserialize.
  template <typename T>
  T get() {
    return serial::from_bytes<T>(wait().payload);
  }

  /// The matched message (only after completion).
  Message& message() {
    TRIOLET_CHECK(completed_, "message() before completion");
    return msg_;
  }

 private:
  friend class Comm;
  friend std::size_t wait_any(std::span<PendingRecv> recvs);

  PendingRecv(Comm* comm, int src, int tag)
      : comm_(comm), src_(src), tag_(tag) {}

  Comm* comm_ = nullptr;
  int src_ = kAnySource;
  int tag_ = kAnyTag;
  bool completed_ = false;
  Message msg_;
};

inline PendingRecv Comm::irecv(int src, int tag) {
  return PendingRecv(this, src, tag);
}

/// Blocks until at least one receive in `recvs` has a match; completes it
/// and returns its index. Already-completed handles win immediately. All
/// handles must belong to the same Comm.
std::size_t wait_any(std::span<PendingRecv> recvs);

/// Completes every receive in `recvs` (in no particular order).
inline void wait_all(std::span<PendingRecv> recvs) {
  for (auto& r : recvs) r.wait();
}

/// A subgroup view over a parent communicator: translates group ranks to
/// world ranks and runs group-scoped point-to-point and collectives. Tags
/// are offset into a reserved band so group traffic cannot collide with the
/// parent's user tags. Group collectives mirror the parent's tree
/// algorithms (binomial broadcast/reduce/gather, dissemination barrier,
/// fixed-tree allreduce) scoped to the group's ranks.
class Comm::Group {
 public:
  Group(Comm* parent, std::vector<int> members, int my_group_rank)
      : parent_(parent),
        members_(std::move(members)),
        rank_(my_group_rank) {}

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(members_.size()); }
  int world_rank(int group_rank) const {
    TRIOLET_ASSERT(group_rank >= 0 && group_rank < size());
    return members_[static_cast<std::size_t>(group_rank)];
  }

  template <typename T>
  void send(int dst, int tag, const T& v) {
    parent_->send(world_rank(dst), group_tag(tag), v);
  }

  template <typename T>
  T recv(int src, int tag) {
    return parent_->recv<T>(world_rank(src), group_tag(tag));
  }

  /// Group-scoped binomial-tree reduce to group rank 0, combining
  /// contiguous group-rank blocks in fixed tree order (same determinism
  /// contract as Comm::reduce).
  template <typename T, typename Op>
  T reduce(const T& v, Op op) {
    CollectiveScope scope(*parent_, Collective::kReduce);
    const int p = size();
    T acc = v;
    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
      if (rank_ & mask) {
        send(rank_ - mask, kGroupReduce + round, acc);
        return T{};
      }
      if (rank_ + mask < p) {
        acc = op(std::move(acc), recv<T>(rank_ + mask, kGroupReduce + round));
      }
    }
    return acc;
  }

  /// Group-scoped binomial-tree broadcast from group rank 0.
  template <typename T>
  void broadcast(T& v) {
    CollectiveScope scope(*parent_, Collective::kBroadcast);
    const int p = size();
    if (p == 1) return;
    int mask = 1, round = 0;
    if (rank_ != 0) {
      for (; mask < p; mask <<= 1, ++round) {
        if (rank_ & mask) {
          v = recv<T>(rank_ - mask, kGroupBcast + round);
          break;
        }
      }
    } else {
      for (; mask < p; mask <<= 1) ++round;
    }
    for (mask >>= 1, --round; mask > 0; mask >>= 1, --round) {
      if (rank_ + mask < p) send(rank_ + mask, kGroupBcast + round, v);
    }
  }

  /// Group-scoped gather to group rank 0 (binomial subtree bundles).
  template <typename T>
  std::vector<T> gather(const T& v) {
    CollectiveScope scope(*parent_, Collective::kGather);
    const int p = size();
    std::vector<T> sub;
    sub.push_back(v);
    int round = 0;
    for (int mask = 1; mask < p; mask <<= 1, ++round) {
      if (rank_ & mask) {
        send(rank_ - mask, kGroupGather + round, sub);
        return {};
      }
      if (rank_ + mask < p) {
        auto child = recv<std::vector<T>>(rank_ + mask, kGroupGather + round);
        sub.insert(sub.end(), std::make_move_iterator(child.begin()),
                   std::make_move_iterator(child.end()));
      }
    }
    return sub;
  }

  /// Group-scoped allreduce: tree reduce to group rank 0 plus tree
  /// broadcast (2·ceil(log2 P) critical path; bitwise identical on every
  /// group rank).
  template <typename T, typename Op>
  T allreduce(const T& v, Op op) {
    CollectiveScope scope(*parent_, Collective::kAllreduce);
    T acc = reduce(v, op);
    broadcast(acc);
    return acc;
  }

  /// Group-scoped dissemination barrier.
  void barrier() {
    CollectiveScope scope(*parent_, Collective::kBarrier);
    const int p = size();
    int round = 0;
    for (int dist = 1; dist < p; dist <<= 1, ++round) {
      send((rank_ + dist) % p, kGroupBarrier + round, std::uint8_t{0});
      (void)recv<std::uint8_t>((rank_ - dist + p) % p, kGroupBarrier + round);
    }
  }

 private:
  // The top tags of the group band are reserved for the collectives: one
  // 64-tag sub-band per collective, one tag per tree round.
  static constexpr int kGroupCollBase = (1 << 20) - 512;
  static constexpr int kGroupReduce = kGroupCollBase + 0 * 64;
  static constexpr int kGroupBcast = kGroupCollBase + 1 * 64;
  static constexpr int kGroupGather = kGroupCollBase + 2 * 64;
  static constexpr int kGroupBarrier = kGroupCollBase + 3 * 64;
  static int group_tag(int tag) {
    TRIOLET_CHECK(tag >= 0 && tag < (1 << 20), "group tag out of range");
    return kTagGroupBand + tag;  // audited band below kFirstReservedTag
  }

  Comm* parent_;
  std::vector<int> members_;
  int rank_;
};

}  // namespace triolet::net
