#pragma once

// The cache-aware scatter protocol: net-side implementation of the
// serial::Residency{Encoder,Decoder} hooks against the per-rank SliceCache.
//
// Sender (root) side — ResidencyEncodeScope: while a task/grant payload is
// serialized for destination r, each resident slice is looked up in the
// deterministic model of r's cache. A model hit means r already holds the
// exact (id, version, range) bytes, so the codec writes an 8-byte checksum
// token ("resident grant") instead of the payload; a miss records the slice
// in the model and falls back to the existing zero-copy inline path.
//
// Receiver side — ResidencyDecodeScope: an inline slice is stored into this
// rank's cache for future rounds; a token is resolved from the cache after
// checksum validation. On a miss or a validation failure the receiver
// repairs itself with a fetch round trip to the owner (kTagResidentFetch /
// kTagResidentData), so a divergent cache costs one extra round trip, never
// a wrong answer. The owner answers fetches from inside its own blocking
// receives via the Comm service hook, so a worker blocked on a fetch can
// never deadlock against a root blocked in the enclosing collective.

#include <cstring>
#include <optional>
#include <span>

#include "net/comm.hpp"
#include "net/slice_cache.hpp"
#include "net/tags.hpp"
#include "serial/residency.hpp"
#include "serial/serialize.hpp"

namespace triolet::net {

/// Wire format of a cache-miss fetch request (kTagResidentFetch).
struct SliceFetchRequest {
  serial::SliceKey key;
};

/// Registers the fetch-answering service on `comm` (idempotent). Any rank
/// that encodes resident slices must install this before its first
/// residency-aware send: receivers may fetch at any later blocking receive.
/// The installed-flag is per Comm (not per Residency): under the service
/// layer many job Comms share one Residency, and each job's root must
/// answer fetches on its own leased tag band.
inline void install_residency_fetch_service(Comm& comm) {
  if (comm.has_service(kTagResidentFetch)) return;
  comm.set_service(kTagResidentFetch, [&comm](Message& m) {
    const auto req = serial::from_bytes<SliceFetchRequest>(m.payload);
    comm.send_bytes(m.src, kTagResidentData,
                    serial::ResidentProviderRegistry::instance().fetch(req.key));
  });
}

/// Installs this scope as the thread's residency encoder for the duration
/// of one serialization aimed at `dst`. When the payload being serialized
/// is a *fused view* (a composite of resident leaves — zip/slice/transform
/// compositions or a segmented source), the sender passes `views` so token
/// substitutions are additionally charged to CommStats::views: those are
/// the intermediate bytes a materializing pipeline would have shipped.
class ResidencyEncodeScope final : public serial::ResidencyEncoder {
 public:
  ResidencyEncodeScope(Comm& comm, int dst, ViewStats* views = nullptr)
      : res_(&comm.residency()),
        dst_(dst),
        stats_(&comm.residency_stats()),
        views_(views) {}

  std::optional<std::uint64_t> try_token(
      const serial::SliceKey& key,
      std::span<const std::byte> payload) override {
    // Model lookup/update under the Residency lock: concurrent jobs share
    // the per-rank Residency under the service layer. Stats stay per-Comm
    // (each Comm belongs to one rank thread), so they need no lock here.
    std::lock_guard<std::mutex> lock(res_->mu);
    SliceCache& model = res_->model_for(dst_);
    if (const auto* e = model.lookup(key); e && e->len == payload.size()) {
      stats_->tokens_sent += 1;
      stats_->bytes_avoided += static_cast<std::int64_t>(payload.size());
      if (views_ != nullptr) {
        views_->view_tokens += 1;
        views_->view_bytes_avoided += static_cast<std::int64_t>(payload.size());
      }
      return e->checksum;
    }
    const std::uint64_t ck = serial::checksum(payload);
    model.insert_meta(key, payload.size(), ck);
    stats_->slices_inlined += 1;
    stats_->bytes_inlined += static_cast<std::int64_t>(payload.size());
    return std::nullopt;
  }

 private:
  Residency* res_;
  int dst_;
  ResidencyStats* stats_;
  ViewStats* views_;
  serial::ScopedResidencyEncoder install_{this};  // last: members ready first
};

/// Installs this scope as the thread's residency decoder. `owner` is the
/// rank fetched from on a miss (the scatter/grant root).
class ResidencyDecodeScope final : public serial::ResidencyDecoder {
 public:
  explicit ResidencyDecodeScope(Comm& comm, int owner = 0)
      : comm_(&comm),
        res_(&comm.residency()),
        stats_(&comm.residency_stats()),
        owner_(owner) {}

  void resolve(const serial::SliceKey& key, std::uint64_t checksum,
               std::span<std::byte> out) override {
    {
      // Cache probe under the Residency lock (shared across jobs under the
      // service layer) — released before the fetch round trip below, so a
      // blocked fetch never holds the rank's other jobs off their cache.
      std::lock_guard<std::mutex> lock(res_->mu);
      if (const auto* e = res_->cache.lookup(key)) {
        if (!e->bytes.empty() && e->len == out.size() &&
            serial::checksum(e->bytes) == checksum) {
          stats_->cache_hits += 1;
          std::memcpy(out.data(), e->bytes.data(), out.size());
          return;
        }
        // Cached but wrong (corruption, or a model-mode entry with no
        // bytes): drop it and repair through the fetch path.
        stats_->checksum_failures += 1;
        res_->cache.erase(key);
      } else {
        stats_->cache_misses += 1;
      }
      stats_->fetches += 1;
    }
    comm_->send(owner_, kTagResidentFetch, SliceFetchRequest{key});
    Message m = comm_->recv_message(owner_, kTagResidentData);
    TRIOLET_CHECK(m.payload.size() == out.size(),
                  "resident fetch returned wrong slice size");
    std::memcpy(out.data(), m.payload.data(), out.size());
    std::lock_guard<std::mutex> lock(res_->mu);
    res_->cache.insert(key, m.payload);
  }

  void store(const serial::SliceKey& key,
             std::span<const std::byte> payload) override {
    std::lock_guard<std::mutex> lock(res_->mu);
    res_->cache.insert(key, payload);
  }

 private:
  Comm* comm_;
  Residency* res_;
  ResidencyStats* stats_;
  int owner_;
  serial::ScopedResidencyDecoder install_{this};  // last: members ready first
};

}  // namespace triolet::net
