#pragma once

// Transport: the seam between Comm and the bytes-moving substrate.
//
// Comm implements the MPI-shaped API (typed sends, collectives, services,
// tag mapping, stats attribution); a Transport moves finished payloads
// between ranks and matches them on the receive side. Carving this seam is
// the first step toward ROADMAP item 3 (pluggable multi-process backends):
// a socket or shared-memory backend is a third implementation of the same
// five virtuals, invisible to every layer above Comm.
//
// Two in-process backends ship today:
//
//   ring      (default) the lock-free data plane: per-(sender, receiver)
//             SPSC descriptor rings drained into a receiver-private
//             tag-indexed match table, slab-pooled eager payloads, and an
//             ownership-passing rendezvous path for large messages
//             (net/ring_transport.hpp).
//   mailbox   the original mutex+condvar Mailbox per rank with O(pending)
//             linear-scan matching. Kept as the baseline bm_msg measures
//             against and as the semantic reference for equivalence tests.
//
// Selection: TransportOptions::backend, else the TRIOLET_TRANSPORT
// environment variable ("ring" | "mailbox"), else ring.
//
// Threading contract (both backends satisfy it; future backends must):
//   - deliver() on an endpoint attached as rank r may be called by r's rank
//     thread and r's progress-engine thread, but never concurrently for the
//     same (endpoint) — Comm guarantees this by flushing the engine before
//     every blocking send.
//   - pop_match / pop_match_any / try_pop_match on an endpoint are called
//     only by the owning rank thread.
//   - purge_tag_range(lo, hi) requires the tag range to be quiescent: no
//     rank thread is sending or receiving traffic in [lo, hi) (the service
//     layer purges a band after joining the band's rank threads).
//   - interrupt_all() and inject() may be called from any thread.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <utility>

#include "net/message.hpp"
#include "serial/bytes.hpp"

namespace triolet::net {

/// Default eager threshold when neither TransportOptions::eager_bytes nor
/// TRIOLET_EAGER_BYTES overrides it.
inline constexpr std::size_t kDefaultEagerBytes = 4096;

struct TransportOptions {
  /// "ring", "mailbox", or "" (resolve from TRIOLET_TRANSPORT, default
  /// ring).
  std::string backend{};
  /// 0 = unbounded; nonzero models bounded message buffers (BufferOverflow
  /// thrown at the sender, as Mailbox::push always did).
  std::size_t max_message_bytes = 0;
  /// Payloads <= this many bytes are copied inline into a pooled slab
  /// (eager); larger payloads change hands as owned buffers (rendezvous).
  /// -1 = resolve from TRIOLET_EAGER_BYTES, default kDefaultEagerBytes.
  /// 0 is valid and forces the rendezvous path for every non-empty payload.
  long eager_bytes = -1;
};

/// Message-plane counters a transport increments as it moves traffic.
/// Relaxed atomics because Comm keeps one shard per producing thread (rank
/// thread, progress engine) and only sums them at snapshot time.
struct MsgCounters {
  std::atomic<std::int64_t> eager_msgs{0};
  std::atomic<std::int64_t> rendezvous_msgs{0};
  std::atomic<std::int64_t> pool_hits{0};
  std::atomic<std::int64_t> pool_misses{0};
  std::atomic<std::int64_t> ring_full_stalls{0};
};

class Transport {
 public:
  /// One rank's attachment to the transport within one tag band (a leased
  /// job band under the service layer, band 0 otherwise). The endpoint is
  /// owned by the transport and stays valid for the transport's lifetime.
  class Endpoint {
   public:
    virtual ~Endpoint() = default;

    /// Ships `sg` to rank `dst` under (already band-mapped) `tag`, stamped
    /// with sg.stream_checksum(). Borrowed segments in `sg` are copied
    /// before return, so they only need to live for the call. Throws
    /// BufferOverflow when sg.size() exceeds the configured limit.
    virtual void deliver(int dst, int tag, serial::SegmentedBytes sg,
                         MsgCounters& counters) = 0;

    /// Blocks until a message matching (src, tag) is available and removes
    /// it. kAnySource / kAnyTag act as wildcards; a kAnyTag pattern only
    /// matches tags in [wild_lo, wild_hi). Throws ClusterAborted when
    /// `aborted` (or the optional `also_aborted`) is raised while waiting.
    virtual Message pop_match(int src, int tag,
                              const std::atomic<bool>& aborted, int wild_lo,
                              int wild_hi,
                              const std::atomic<bool>* also_aborted) = 0;

    /// Blocks until a message matching any of `patterns` is available;
    /// removes and returns it with `which` set to the matching pattern
    /// index. When several patterns could match queued messages, the
    /// earliest-arrived message wins (and ties go to the lowest pattern
    /// index), preserving per-(src, tag) FIFO delivery.
    virtual Message pop_match_any(
        std::span<const std::pair<int, int>> patterns,
        const std::atomic<bool>& aborted, std::size_t& which, int wild_lo,
        int wild_hi, const std::atomic<bool>* also_aborted) = 0;

    /// Non-blocking pop_match; returns false when nothing matches.
    virtual bool try_pop_match(int src, int tag, Message& out, int wild_lo,
                               int wild_hi) = 0;
  };

  virtual ~Transport() = default;

  virtual int nranks() const = 0;
  virtual const char* name() const = 0;

  /// This transport's resolved eager threshold in bytes.
  virtual std::size_t eager_bytes() const = 0;

  /// The endpoint of `rank` in the band starting at `band_base` (0 = the
  /// identity band). Thread-safe; idempotent per (rank, band_base).
  virtual Endpoint& attach(int rank, int band_base) = 0;

  /// Drops every pending message whose tag is in [lo, hi) on every rank —
  /// including descriptors still in flight inside rings — returning their
  /// buffers to the pool. Returns how many messages were dropped. See the
  /// quiescence contract in the file comment.
  virtual std::size_t purge_tag_range(int lo, int hi) = 0;

  /// Wakes every blocked receiver without delivering anything; waiters
  /// re-check their abort flags (cluster-wide and per-job) and either
  /// throw ClusterAborted or go back to sleep.
  virtual void interrupt_all() = 0;

  /// Test hook: deposits `m` at rank `dst` exactly as given — checksum and
  /// src are NOT recomputed, so tests can inject corrupted traffic.
  virtual void inject(int dst, Message m) = 0;
};

/// Resolves TransportOptions::eager_bytes (-1 = TRIOLET_EAGER_BYTES env,
/// default kDefaultEagerBytes).
std::size_t resolve_eager_bytes(long option);

/// Resolves the backend name ("" = TRIOLET_TRANSPORT env, default "ring").
std::string resolve_transport_backend(const std::string& option);

/// Builds the configured transport for an `nranks`-rank cluster.
std::unique_ptr<Transport> make_transport(int nranks,
                                          const TransportOptions& options);

}  // namespace triolet::net
