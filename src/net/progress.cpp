#include "net/progress.hpp"

#include <utility>

#include "net/message.hpp"

namespace triolet::net {

ProgressEngine::ProgressEngine(const std::atomic<bool>* aborted)
    : aborted_(aborted), thread_([this] { loop(); }) {}

ProgressEngine::~ProgressEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  thread_.join();
}

std::shared_ptr<AsyncOpState> ProgressEngine::post(std::function<void()> op) {
  auto state = std::make_shared<AsyncOpState>();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.emplace_back(std::move(op), state);
    in_flight_ += 1;
  }
  work_cv_.notify_one();
  return state;
}

void ProgressEngine::flush() {
  std::exception_ptr deferred;
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return in_flight_ == 0; });
    deferred = std::exchange(deferred_error_, nullptr);
  }
  if (deferred) std::rethrow_exception(deferred);
}

void ProgressEngine::loop() {
  for (;;) {
    std::pair<std::function<void()>, std::shared_ptr<AsyncOpState>> item;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with a drained queue
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    if (aborted_ && aborted_->load(std::memory_order_acquire)) {
      // Cancellation: the cluster died; deliver nothing.
      error = std::make_exception_ptr(ClusterAborted());
    } else {
      try {
        item.first();
      } catch (...) {
        error = std::current_exception();
      }
    }
    // A failed op whose handle was dropped (the engine holds the only
    // reference) has no one left to observe the error: defer it for the
    // next flush. When a handle is still held, its holder collects the
    // error from wait()/test() instead.
    if (error && item.second.use_count() == 1) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!deferred_error_) deferred_error_ = error;
    }
    item.second->complete(error);
    {
      std::lock_guard<std::mutex> lock(mu_);
      in_flight_ -= 1;
      if (in_flight_ == 0) drain_cv_.notify_all();
    }
  }
}

}  // namespace triolet::net
