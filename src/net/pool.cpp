#include "net/pool.hpp"

#include <new>

namespace triolet::net {

namespace {

/// How many slabs a thread cache holds per class before flushing half to
/// the central depot, and how many it pulls per refill.
constexpr std::size_t kCacheCap = 64;
constexpr std::size_t kBatch = 16;

}  // namespace

/// Per-thread freelists. Defined at namespace scope (not function-local) so
/// the destructor can flush into the leaky central depot on thread exit.
struct PoolThreadCache {
  BufferPool::FreeNode* head[kPoolNumClasses] = {};
  std::size_t count[kPoolNumClasses] = {};

  ~PoolThreadCache() {
    BufferPool& pool = BufferPool::instance();
    for (std::uint32_t c = 0; c < kPoolNumClasses; ++c) {
      if (head[c] == nullptr) continue;
      BufferPool::FreeNode* tail = head[c];
      while (tail->next != nullptr) tail = tail->next;
      std::lock_guard<std::mutex> lock(pool.central_[c].mu);
      tail->next = pool.central_[c].head;
      pool.central_[c].head = head[c];
      pool.central_[c].count += count[c];
      head[c] = nullptr;
      count[c] = 0;
    }
  }
};

namespace {
thread_local PoolThreadCache tl_cache;
}  // namespace

BufferPool& BufferPool::instance() {
  static BufferPool* pool = new BufferPool();  // leaky: outlives all threads
  return *pool;
}

BufferPool::Alloc BufferPool::allocate(std::size_t n) {
  outstanding_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint32_t cls = class_for(n);
  if (cls == kHeapClass) {
    return {static_cast<std::byte*>(::operator new(n)), kHeapClass, false};
  }
  PoolThreadCache& tc = tl_cache;
  if (FreeNode* node = tc.head[cls]) {
    tc.head[cls] = node->next;
    tc.count[cls] -= 1;
    return {reinterpret_cast<std::byte*>(node), cls, true};
  }
  // Refill from the central depot.
  {
    Central& central = central_[cls];
    std::lock_guard<std::mutex> lock(central.mu);
    if (central.head != nullptr) {
      FreeNode* got = central.head;
      // Keep one for the caller, move up to kBatch - 1 more into the cache.
      FreeNode* cursor = got->next;
      std::size_t moved = 0;
      FreeNode* cache_head = nullptr;
      while (cursor != nullptr && moved < kBatch - 1) {
        FreeNode* next = cursor->next;
        cursor->next = cache_head;
        cache_head = cursor;
        cursor = next;
        moved += 1;
      }
      central.head = cursor;
      central.count -= moved + 1;
      tc.head[cls] = cache_head;
      tc.count[cls] = moved;
      return {reinterpret_cast<std::byte*>(got), cls, true};
    }
  }
  return {static_cast<std::byte*>(::operator new(class_bytes(cls))), cls,
          false};
}

void BufferPool::release(std::byte* p, std::uint32_t cls) noexcept {
  outstanding_.fetch_sub(1, std::memory_order_acq_rel);
  if (cls == kHeapClass) {
    ::operator delete(p);
    return;
  }
  PoolThreadCache& tc = tl_cache;
  auto* node = reinterpret_cast<FreeNode*>(p);
  node->next = tc.head[cls];
  tc.head[cls] = node;
  tc.count[cls] += 1;
  if (tc.count[cls] >= kCacheCap) {
    // Flush half the cache to the central depot.
    FreeNode* keep = tc.head[cls];
    for (std::size_t i = 1; i < kCacheCap / 2; ++i) keep = keep->next;
    FreeNode* flush = keep->next;
    keep->next = nullptr;
    tc.count[cls] = kCacheCap / 2;
    FreeNode* tail = flush;
    std::size_t flushed = 1;
    while (tail->next != nullptr) {
      tail = tail->next;
      flushed += 1;
    }
    Central& central = central_[cls];
    std::lock_guard<std::mutex> lock(central.mu);
    tail->next = central.head;
    central.head = flush;
    central.count += flushed;
  }
}

}  // namespace triolet::net
