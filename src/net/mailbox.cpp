#include "net/mailbox.hpp"

#include <algorithm>

namespace triolet::net {

void Mailbox::push(Message msg) {
  if (max_message_bytes_ != 0 && msg.payload.size() > max_message_bytes_) {
    throw BufferOverflow();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

bool Mailbox::match_locked(int src, int tag, Message& out, int wild_lo,
                           int wild_hi) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    const bool tag_ok = tag == kAnyTag
                            ? (it->tag >= wild_lo && it->tag < wild_hi)
                            : it->tag == tag;
    if ((src == kAnySource || it->src == src) && tag_ok) {
      out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

Message Mailbox::pop_match(int src, int tag, const std::atomic<bool>& aborted,
                           int wild_lo, int wild_hi,
                           const std::atomic<bool>* also_aborted) {
  std::unique_lock<std::mutex> lock(mu_);
  Message out;
  bool found = false;
  cv_.wait(lock, [&] {
    found = match_locked(src, tag, out, wild_lo, wild_hi);
    return found || aborted.load(std::memory_order_acquire) ||
           (also_aborted && also_aborted->load(std::memory_order_acquire));
  });
  if (!found) throw ClusterAborted();
  return out;
}

bool Mailbox::try_pop_match(int src, int tag, Message& out, int wild_lo,
                            int wild_hi) {
  std::lock_guard<std::mutex> lock(mu_);
  return match_locked(src, tag, out, wild_lo, wild_hi);
}

Message Mailbox::pop_match_any(std::span<const std::pair<int, int>> patterns,
                               const std::atomic<bool>& aborted,
                               std::size_t& which, int wild_lo, int wild_hi,
                               const std::atomic<bool>* also_aborted) {
  std::unique_lock<std::mutex> lock(mu_);
  Message out;
  bool found = false;
  auto scan = [&] {
    // Walk the queue (not the patterns) first so the earliest queued
    // message wins even when several patterns could match.
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      for (std::size_t p = 0; p < patterns.size(); ++p) {
        const auto [src, tag] = patterns[p];
        const bool tag_ok = tag == kAnyTag
                                ? (it->tag >= wild_lo && it->tag < wild_hi)
                                : it->tag == tag;
        if ((src == kAnySource || it->src == src) && tag_ok) {
          out = std::move(*it);
          queue_.erase(it);
          which = p;
          return true;
        }
      }
    }
    return false;
  };
  cv_.wait(lock, [&] {
    found = scan();
    return found || aborted.load(std::memory_order_acquire) ||
           (also_aborted && also_aborted->load(std::memory_order_acquire));
  });
  if (!found) throw ClusterAborted();
  return out;
}

void Mailbox::interrupt() {
  // The lock is required for correctness, not just hygiene: a waiter that
  // has checked its abort flag but not yet blocked in cv_.wait holds mu_,
  // so notifying while the mutex is free can only happen before the check
  // or after the wait is armed — never in the gap between them. An
  // unlocked notify_all could fire exactly in that gap and leave an
  // aborted job parked forever.
  std::lock_guard<std::mutex> lock(mu_);
  cv_.notify_all();
}

std::size_t Mailbox::purge_tag_range(int lo, int hi) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t before = queue_.size();
  std::erase_if(queue_,
                [&](const Message& m) { return m.tag >= lo && m.tag < hi; });
  return before - queue_.size();
}

std::size_t Mailbox::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace triolet::net
