#pragma once

// The lock-free messaging data plane (the default Transport backend).
//
// Layout per tag-band domain (docs/INTERNALS.md §16):
//
//   sender r ── SpscRing(r, s) ──▶ receiver s drains into MatchTable(s)
//
// One single-producer/single-consumer descriptor ring per ordered
// (sender, receiver) pair, so sends are a store + release-publish with no
// lock and no contention between senders. The receiver drains every ring
// into a private tag-indexed match table — open-addressed buckets keyed by
// (src, tag), FIFO per key, plus one arrival-order list for wildcard
// windows — so pop_match is a hash lookup instead of the mailbox's
// O(pending) scan under a lock.
//
// A descriptor is fixed-size and trivially copyable. Payloads ride along in
// one of two ways:
//
//   eager       size <= eager_bytes: bytes are gathered into a pooled slab
//               by the sender; the receiver adopts the slab and releases it
//               to the pool when the Payload dies.
//   rendezvous  larger payloads change hands as a whole owned buffer (an
//               RzNode holding the sender's flat vector, placement-new'd in
//               a small slab): ownership passes, nothing is re-copied, and
//               the sender never blocks — buffered-send semantics are
//               preserved exactly (exchange() and the symmetric collectives
//               depend on them).
//
// Ring overflow never blocks or drops: each pair also has a mutex-guarded
// unbounded overflow deque. Once a send overflows, subsequent sends append
// there (preserving order) until the receiver has drained both; the stall
// is counted in MsgCounters::ring_full_stalls.
//
// This header exposes the building blocks (descriptor, ring, match table)
// so they can be unit-tested in isolation; the Transport implementation
// that wires P*P of them together lives in ring_transport.cpp.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "net/pool.hpp"
#include "net/transport.hpp"
#include "support/macros.hpp"

namespace triolet::net {

/// Slots per SPSC ring. 256 descriptors absorb every burst the collectives
/// and the scheduler produce; deeper backlogs spill to the overflow deque.
inline constexpr std::size_t kRingSlots = 256;

/// Fixed-size message descriptor carried through the rings.
struct RingDesc {
  enum Kind : std::uint32_t { kEager = 0, kRendezvous = 1 };

  std::int32_t src = 0;
  std::int32_t tag = 0;
  std::uint32_t kind = kEager;
  /// BufferPool class of `ptr` (kHeapClass possible; meaningless when ptr
  /// is null — a 0-byte eager message carries no slab at all).
  std::uint32_t pclass = kHeapClass;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
  /// Eager: the payload slab. Rendezvous: an RzNode. Null: empty payload.
  void* ptr = nullptr;
};
static_assert(std::is_trivially_copyable_v<RingDesc>);

/// Rendezvous handoff node: the sender's flat payload vector, moved — not
/// copied — to the receiver. Lives placement-new'd in a pooled slab.
struct RzNode {
  std::vector<std::byte> flat;
};

/// Bounded single-producer/single-consumer descriptor ring with an
/// unbounded mutex-guarded overflow lane behind it. The fast path (ring
/// not full, no overflow pending) is entirely lock-free; the overflow
/// protocol keeps per-pair FIFO order:
///
///   - only the (single) producer ever sets ov_active_, so its fast-path
///     relaxed read can never be a stale false while messages sit in the
///     overflow deque;
///   - the consumer drains the ring fully before the deque, and descriptors
///     stop entering the ring the moment the deque becomes active, so ring
///     entries always predate deque entries.
class SpscRing {
 public:
  SpscRing() : slots_(new RingDesc[kRingSlots]) {}

  /// Producer side. Returns true when the descriptor took the lock-free
  /// fast path, false when it went through the overflow deque (a stall).
  bool push(const RingDesc& d) {
    if (!ov_active_.load(std::memory_order_relaxed) && try_push_ring(d)) {
      return true;
    }
    std::lock_guard<std::mutex> lock(ov_mu_);
    if (!ov_active_.load(std::memory_order_relaxed)) {
      // The consumer may have drained since the fast path failed; retry
      // the ring so the deque only activates under real backlog.
      if (try_push_ring(d)) return true;
      ov_active_.store(true, std::memory_order_relaxed);
    }
    overflow_.push_back(d);
    return false;
  }

  /// Consumer side: pops the oldest descriptor (ring first, then the
  /// overflow deque). Returns false when empty.
  bool pop(RingDesc& out) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    if (h != tail_.load(std::memory_order_acquire)) {
      out = slots_[h & (kRingSlots - 1)];
      head_.store(h + 1, std::memory_order_release);
      return true;
    }
    if (!ov_active_.load(std::memory_order_relaxed)) return false;
    std::lock_guard<std::mutex> lock(ov_mu_);
    if (overflow_.empty()) {
      ov_active_.store(false, std::memory_order_relaxed);
      return false;
    }
    out = overflow_.front();
    overflow_.pop_front();
    if (overflow_.empty()) ov_active_.store(false, std::memory_order_relaxed);
    return true;
  }

  /// Cheap maybe-nonempty probe for the consumer's park predicate (exact
  /// for the ring; conservative true while the overflow lane is active).
  bool maybe_nonempty() const {
    return head_.load(std::memory_order_relaxed) !=
               tail_.load(std::memory_order_acquire) ||
           ov_active_.load(std::memory_order_relaxed);
  }

 private:
  bool try_push_ring(const RingDesc& d) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == kRingSlots) return false;
    slots_[t & (kRingSlots - 1)] = d;
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  std::unique_ptr<RingDesc[]> slots_;
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // producer-owned
  alignas(64) std::atomic<std::uint64_t> head_{0};  // consumer-owned
  alignas(64) std::mutex ov_mu_;
  std::deque<RingDesc> overflow_;
  std::atomic<bool> ov_active_{false};
};

/// Receiver-private pending-message index: open-addressed hash of (src,
/// tag) buckets, FIFO within each bucket, threaded onto one arrival-order
/// list for wildcard matching. No locks anywhere — only the owning rank
/// thread touches it. Entries live in pooled slabs recycled through a local
/// freelist, so steady-state insert/remove allocates nothing.
///
/// Matching invariant: the earliest entry in any arrival-window that a
/// pattern selects is always the head of its bucket (same-bucket entries
/// share (src, tag) and arrive in order), so every removal is an O(1)
/// bucket-head pop and per-(src, tag) FIFO order is structural.
class MatchTable {
 public:
  struct Entry {
    Entry* bucket_next;
    Entry* arrival_prev;
    Entry* arrival_next;
    std::uint64_t seq;
    Message msg;
  };

  explicit MatchTable(int nranks = 1) : nranks_(nranks) { rehash(64); }
  ~MatchTable() { clear_and_release(); }
  MatchTable(const MatchTable&) = delete;
  MatchTable& operator=(const MatchTable&) = delete;

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  void insert(Message m) {
    Entry* e = alloc_entry(std::move(m));
    Slot& s = slot_for(key_of(e->msg.src, e->msg.tag), /*create=*/true);
    if (s.tail == nullptr) {
      s.head = s.tail = e;
    } else {
      s.tail->bucket_next = e;
      s.tail = e;
    }
    // Arrival-order list tail append.
    e->arrival_prev = arrival_tail_;
    if (arrival_tail_ == nullptr) {
      arrival_head_ = e;
    } else {
      arrival_tail_->arrival_next = e;
    }
    arrival_tail_ = e;
    count_ += 1;
  }

  /// Earliest entry matching (src, tag) with wildcards and the kAnyTag
  /// window, or null. The returned pointer is valid until the next
  /// mutation; remove it with take().
  Entry* find(int src, int tag, int wild_lo, int wild_hi) {
    if (tag != kAnyTag) {
      if (src != kAnySource) {
        Slot* s = lookup(key_of(src, tag));
        return s ? s->head : nullptr;
      }
      // Any source, fixed tag: earliest head over the per-source buckets.
      Entry* best = nullptr;
      for (int r = 0; r < nranks_; ++r) {
        Slot* s = lookup(key_of(r, tag));
        if (s && s->head && (!best || s->head->seq < best->seq)) {
          best = s->head;
        }
      }
      return best;
    }
    // Wildcard tag: walk the arrival list inside the window. The first hit
    // is the earliest by construction.
    for (Entry* e = arrival_head_; e != nullptr; e = e->arrival_next) {
      if (e->msg.tag >= wild_lo && e->msg.tag < wild_hi &&
          (src == kAnySource || e->msg.src == src)) {
        return e;
      }
    }
    return nullptr;
  }

  /// Earliest entry matching any pattern; `which` gets the pattern index
  /// (ties on one entry go to the lowest index). Null when nothing matches.
  Entry* find_any(std::span<const std::pair<int, int>> patterns,
                  std::size_t& which, int wild_lo, int wild_hi) {
    Entry* best = nullptr;
    for (std::size_t p = 0; p < patterns.size(); ++p) {
      Entry* e = find(patterns[p].first, patterns[p].second, wild_lo, wild_hi);
      if (e && (!best || e->seq < best->seq)) {
        best = e;
        which = p;
      }
    }
    return best;
  }

  /// Unlinks `e` (a pointer returned by find/find_any) and returns its
  /// message; the entry's slab goes back on the freelist.
  Message take(Entry* e) {
    Slot& s = slot_for(key_of(e->msg.src, e->msg.tag), /*create=*/false);
    // Every removable entry is its bucket's head (see class comment).
    TRIOLET_ASSERT(s.head == e);
    s.head = e->bucket_next;
    if (s.head == nullptr) s.tail = nullptr;
    unlink_arrival(e);
    count_ -= 1;
    Message out = std::move(e->msg);
    free_entry(e);
    return out;
  }

  /// Drops every entry whose tag is in [lo, hi); returns how many. Walking
  /// in arrival order means each matching entry is the earliest live entry
  /// of its (src, tag) key when visited — i.e. its bucket head — so take()
  /// applies.
  std::size_t purge_range(int lo, int hi) {
    std::size_t dropped = 0;
    for (Entry* e = arrival_head_; e != nullptr;) {
      Entry* next = e->arrival_next;
      if (e->msg.tag >= lo && e->msg.tag < hi) {
        take(e);
        dropped += 1;
      }
      e = next;
    }
    return dropped;
  }

 private:
  struct Slot {
    std::uint64_t key = kEmptyKey;
    Entry* head = nullptr;
    Entry* tail = nullptr;
  };
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

  static std::uint64_t key_of(int src, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
            << 32) |
           static_cast<std::uint32_t>(tag);
  }
  static std::uint64_t hash_of(std::uint64_t key) {
    key ^= key >> 33;
    key *= 0xff51afd7ed558ccdull;
    key ^= key >> 33;
    return key;
  }

  Slot* lookup(std::uint64_t key) {
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash_of(key) & mask;; i = (i + 1) & mask) {
      if (slots_[i].key == key) return &slots_[i];
      if (slots_[i].key == kEmptyKey) return nullptr;
    }
  }

  Slot& slot_for(std::uint64_t key, bool create) {
    Slot* s = lookup(key);
    if (s) return *s;
    TRIOLET_ASSERT(create);
    if ((used_slots_ + 1) * 10 >= slots_.size() * 7) {
      rehash(slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash_of(key) & mask;
    while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
    slots_[i].key = key;
    used_slots_ += 1;
    return slots_[i];
  }

  /// Rebuilds the slot array, dropping buckets that have gone empty (they
  /// exist only to keep probe chains intact between rehashes).
  void rehash(std::size_t new_capacity) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_capacity, Slot{});
    used_slots_ = 0;
    for (Slot& s : old) {
      if (s.key == kEmptyKey || s.head == nullptr) continue;
      const std::size_t mask = slots_.size() - 1;
      std::size_t i = hash_of(s.key) & mask;
      while (slots_[i].key != kEmptyKey) i = (i + 1) & mask;
      slots_[i] = s;
      used_slots_ += 1;
    }
  }

  Entry* alloc_entry(Message m) {
    std::byte* raw;
    if (free_entries_ != nullptr) {
      raw = free_entries_;
      free_entries_ = *reinterpret_cast<std::byte**>(raw);
    } else {
      auto a = BufferPool::instance().allocate(sizeof(Entry));
      TRIOLET_ASSERT(a.cls != kHeapClass);
      raw = a.p;
      entry_cls_ = a.cls;
    }
    return new (raw) Entry{nullptr, nullptr, nullptr, next_seq_++,
                           std::move(m)};
  }

  void free_entry(Entry* e) {
    e->~Entry();
    auto* raw = reinterpret_cast<std::byte*>(e);
    *reinterpret_cast<std::byte**>(raw) = free_entries_;
    free_entries_ = raw;
  }

  void unlink_arrival(Entry* e) {
    if (e->arrival_prev) {
      e->arrival_prev->arrival_next = e->arrival_next;
    } else {
      arrival_head_ = e->arrival_next;
    }
    if (e->arrival_next) {
      e->arrival_next->arrival_prev = e->arrival_prev;
    } else {
      arrival_tail_ = e->arrival_prev;
    }
  }

  void clear_and_release() {
    for (Entry* e = arrival_head_; e != nullptr;) {
      Entry* next = e->arrival_next;
      e->~Entry();
      BufferPool::instance().release(reinterpret_cast<std::byte*>(e),
                                     entry_cls_);
      e = next;
    }
    arrival_head_ = arrival_tail_ = nullptr;
    count_ = 0;
    for (std::byte* raw = free_entries_; raw != nullptr;) {
      std::byte* next = *reinterpret_cast<std::byte**>(raw);
      BufferPool::instance().release(raw, entry_cls_);
      raw = next;
    }
    free_entries_ = nullptr;
  }

  int nranks_;
  std::vector<Slot> slots_;
  std::size_t used_slots_ = 0;
  Entry* arrival_head_ = nullptr;
  Entry* arrival_tail_ = nullptr;
  std::byte* free_entries_ = nullptr;
  std::uint32_t entry_cls_ = kHeapClass;
  std::uint64_t next_seq_ = 0;
  std::size_t count_ = 0;
};

/// Builds the ring-backend transport (make_transport dispatches here for
/// backend "ring").
std::unique_ptr<Transport> make_ring_transport(int nranks,
                                               std::size_t max_message_bytes,
                                               std::size_t eager_bytes);

}  // namespace triolet::net
