#include "net/comm.hpp"

namespace triolet::net {

ClusterState::ClusterState(int nranks, std::size_t max_message_bytes) {
  TRIOLET_CHECK(nranks >= 1, "cluster needs at least one rank");
  inboxes.reserve(static_cast<std::size_t>(nranks));
  for (int i = 0; i < nranks; ++i) {
    inboxes.push_back(std::make_unique<Mailbox>(max_message_bytes));
  }
}

void ClusterState::abort_all() {
  aborted.store(true, std::memory_order_release);
  for (auto& m : inboxes) m->interrupt();
}

void Comm::send_bytes(int dst, int tag, std::vector<std::byte> payload) {
  TRIOLET_CHECK(dst >= 0 && dst < size(), "send to invalid rank");
  TRIOLET_CHECK(dst != rank_, "self-sends are not supported; use local data");
  Message m;
  m.src = rank_;
  m.tag = tag;
  m.checksum = serial::checksum(payload);
  stats_.messages_sent += 1;
  stats_.bytes_sent += static_cast<std::int64_t>(payload.size());
  if (active_collective_ >= 0) {
    auto& c = stats_.collectives[static_cast<std::size_t>(active_collective_)];
    c.messages_sent += 1;
    c.bytes_sent += static_cast<std::int64_t>(payload.size());
  }
  m.payload = std::move(payload);
  state_->inboxes[static_cast<std::size_t>(dst)]->push(std::move(m));
}

Message Comm::recv_message(int src, int tag) {
  Message m = state_->inboxes[static_cast<std::size_t>(rank_)]->pop_match(
      src, tag, state_->aborted);
  TRIOLET_CHECK(serial::checksum(m.payload) == m.checksum,
                "message payload failed checksum validation");
  stats_.messages_received += 1;
  stats_.bytes_received += static_cast<std::int64_t>(m.payload.size());
  if (active_collective_ >= 0) {
    auto& c = stats_.collectives[static_cast<std::size_t>(active_collective_)];
    c.messages_received += 1;
    c.bytes_received += static_cast<std::int64_t>(m.payload.size());
  }
  return m;
}

std::optional<Message> Comm::try_recv_message(int src, int tag) {
  Message m;
  if (!state_->inboxes[static_cast<std::size_t>(rank_)]->try_pop_match(src, tag,
                                                                       m)) {
    return std::nullopt;
  }
  TRIOLET_CHECK(serial::checksum(m.payload) == m.checksum,
                "message payload failed checksum validation");
  stats_.messages_received += 1;
  stats_.bytes_received += static_cast<std::int64_t>(m.payload.size());
  return m;
}

Comm::Group Comm::split(int color) {
  std::vector<int> colors = allgather(color);
  std::vector<int> members;
  int my_group_rank = -1;
  for (int r = 0; r < size(); ++r) {
    if (colors[static_cast<std::size_t>(r)] == color) {
      if (r == rank_) my_group_rank = static_cast<int>(members.size());
      members.push_back(r);
    }
  }
  TRIOLET_CHECK(my_group_rank >= 0, "split: caller missing from its group");
  return Group(this, std::move(members), my_group_rank);
}

void Comm::barrier() {
  // Dissemination barrier: after round r every rank has (transitively)
  // heard from the 2^(r+1) ranks behind it, so ceil(log2 P) rounds release
  // everyone — no rank is a bottleneck.
  CollectiveScope scope(*this, Collective::kBarrier);
  const int p = size();
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    send_bytes((rank_ + dist) % p, kTagBarrier + round, {});
    (void)recv_message((rank_ - dist + p) % p, kTagBarrier + round);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& bytes, int root, int tag_base) {
  // Binomial tree: the subtree rooted at virtual rank v spans
  // [v, v + lowest_set_bit(v)); parents forward to children at decreasing
  // power-of-two offsets, so every rank sends at most ceil(log2 P) times.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1, round = 0;
  if (vrank != 0) {
    for (; mask < p; mask <<= 1, ++round) {
      if (vrank & mask) {
        Message m = recv_message(world_of(vrank - mask, root),
                                 tag_base + round);
        bytes = std::move(m.payload);
        break;
      }
    }
  } else {
    for (; mask < p; mask <<= 1) ++round;
  }
  for (mask >>= 1, --round; mask > 0; mask >>= 1, --round) {
    if (vrank + mask < p) {
      send_bytes(world_of(vrank + mask, root), tag_base + round, bytes);
    }
  }
}

}  // namespace triolet::net
