#include "net/comm.hpp"

namespace triolet::net {

ClusterState::ClusterState(int nranks_in, std::size_t max_message_bytes)
    : ClusterState(nranks_in, TransportOptions{
                                  .backend = {},
                                  .max_message_bytes = max_message_bytes,
                                  .eager_bytes = -1,
                              }) {}

ClusterState::ClusterState(int nranks_in, const TransportOptions& options)
    : nranks(nranks_in), transport(make_transport(nranks_in, options)) {}

void ClusterState::abort_all() {
  aborted.store(true, std::memory_order_release);
  transport->interrupt_all();
}

void ClusterState::interrupt_all() { transport->interrupt_all(); }

void Comm::deliver_segments(int dst, int tag, serial::SegmentedBytes sg,
                            int collective, std::size_t shard) {
  const auto zero_copy = static_cast<std::int64_t>(sg.bytes_borrowed());
  const auto total = static_cast<std::int64_t>(sg.size());
  // Send accounting goes to the caller's shard (rank thread or engine
  // thread), so concurrent producers never contend on a lock. The stamp is
  // the checksum accumulated at *write* time, not a hash of the gathered
  // bytes: a borrowed span that was sliced wrong or mutated between
  // serialization and the transport's gather fails validation at the
  // receiver instead of checksumming itself consistently.
  SendShard& s = send_shards_[shard];
  s.messages_sent.fetch_add(1, std::memory_order_relaxed);
  s.bytes_sent.fetch_add(total, std::memory_order_relaxed);
  s.bytes_zero_copy.fetch_add(zero_copy, std::memory_order_relaxed);
  s.bytes_copied.fetch_add(total - zero_copy, std::memory_order_relaxed);
  if (collective >= 0) {
    // Collectives run on the rank thread only, so the per-collective
    // counters stay plain fields in stats_.
    auto& c = stats_.collectives[static_cast<std::size_t>(collective)];
    c.messages_sent += 1;
    c.bytes_sent += total;
  }
  // The single send-side mapping point for all sends (blocking
  // send/send_segments and every isend flavor routes through here — the
  // tag map is immutable state, safe from both threads).
  endpoint_->deliver(dst, tags_.map(tag), std::move(sg), s.msg);
}

void Comm::send_segments(int dst, int tag, serial::SegmentedBytes sg) {
  check_dst(dst);
  // Flush queued isends first so a blocking send can never overtake them
  // (per-(src, tag) FIFO order is part of the transport contract).
  flush_async();
  deliver_segments(dst, tag, std::move(sg), active_collective_);
}

void Comm::send_bytes(int dst, int tag, std::vector<std::byte> payload) {
  check_dst(dst);
  flush_async();
  const std::uint64_t sum = serial::checksum(payload);
  deliver_segments(dst, tag,
                   serial::SegmentedBytes::from_flat(std::move(payload), sum),
                   active_collective_);
}

PendingSend Comm::isend_bytes(int dst, int tag, std::vector<std::byte> payload) {
  check_dst(dst);
  auto buf = std::make_shared<std::vector<std::byte>>(std::move(payload));
  return PendingSend(engine().post([this, dst, tag, buf] {
    const std::uint64_t sum = serial::checksum(*buf);
    deliver_segments(dst, tag,
                     serial::SegmentedBytes::from_flat(std::move(*buf), sum),
                     /*collective=*/-1, kEngineShard);
  }));
}

void Comm::finish_recv(const Message& m, bool attribute_collective) {
  TRIOLET_CHECK(serial::checksum(m.payload) == m.checksum,
                "message payload failed checksum validation");
  // Receive-side counters are rank-thread-only: every pop happens on the
  // owning rank thread, so no synchronization is needed here.
  stats_.messages_received += 1;
  stats_.bytes_received += static_cast<std::int64_t>(m.payload.size());
  if (attribute_collective && active_collective_ >= 0) {
    auto& c = stats_.collectives[static_cast<std::size_t>(active_collective_)];
    c.messages_received += 1;
    c.bytes_received += static_cast<std::int64_t>(m.payload.size());
  }
}

void Comm::dispatch_service(std::size_t idx, Message& m) {
  // Service traffic is housekeeping, not part of the enclosing collective:
  // suspend attribution so a fetch served inside reduce() does not skew the
  // per-collective counters.
  const int saved = active_collective_;
  active_collective_ = -1;
  services_[idx].second(m);
  active_collective_ = saved;
}

void Comm::set_service(int tag, std::function<void(Message&)> handler) {
  const int mapped = tags_.map(tag);
  for (const auto& s : services_) {
    TRIOLET_CHECK(s.first != mapped, "service already registered for this tag");
  }
  services_.emplace_back(mapped, std::move(handler));
}

void Comm::clear_service(int tag) {
  const int mapped = tags_.map(tag);
  std::erase_if(services_, [&](const auto& s) { return s.first == mapped; });
}

bool Comm::has_service(int tag) const {
  const int mapped = tags_.map(tag);
  for (const auto& s : services_) {
    if (s.first == mapped) return true;
  }
  return false;
}

void Comm::poll_services() {
  for (std::size_t i = 0; i < services_.size(); ++i) {
    Message m;
    while (endpoint_->try_pop_match(kAnySource, services_[i].first, m,
                                    tags_.any_lo(), tags_.any_hi())) {
      finish_recv(m, /*attribute_collective=*/false);
      dispatch_service(i, m);
    }
  }
}

Message Comm::pop_with_services(std::span<const std::pair<int, int>> user,
                                std::size_t& which_user) {
  // Service patterns come first: pop_match_any reports the first matching
  // pattern of the *earliest* matching message, so a queued service request
  // is dispatched even when a user pattern is a full wildcard. Service tags
  // are stored mapped; user patterns arrive canonical and map here.
  std::vector<std::pair<int, int>> patterns;
  patterns.reserve(services_.size() + user.size());
  for (const auto& s : services_) patterns.emplace_back(kAnySource, s.first);
  for (const auto& [src, tag] : user) {
    patterns.emplace_back(src, tags_.map_pattern(tag));
  }
  while (true) {
    std::size_t which = 0;
    Message m = endpoint_->pop_match_any(patterns, state_->aborted, which,
                                         tags_.any_lo(), tags_.any_hi(),
                                         job_aborted_);
    if (which < services_.size()) {
      finish_recv(m, /*attribute_collective=*/false);
      dispatch_service(which, m);
      continue;
    }
    finish_recv(m);
    which_user = which - services_.size();
    return m;
  }
}

Message Comm::recv_message(int src, int tag) {
  // Liveness rule: never block waiting for a message while holding
  // undelivered outgoing isends — the peer we are waiting on may itself be
  // waiting for one of them. Flushing also surfaces deferred isend errors
  // at the first blocking receive instead of at body end.
  flush_async();
  if (services_.empty()) {
    Message m = endpoint_->pop_match(src, tags_.map_pattern(tag),
                                     state_->aborted, tags_.any_lo(),
                                     tags_.any_hi(), job_aborted_);
    finish_recv(m);
    return m;
  }
  const std::pair<int, int> pattern{src, tag};
  std::size_t which_user = 0;
  return pop_with_services({&pattern, 1}, which_user);
}

std::optional<Message> Comm::try_recv_message(int src, int tag) {
  Message m;
  if (!endpoint_->try_pop_match(src, tags_.map_pattern(tag), m,
                                tags_.any_lo(), tags_.any_hi())) {
    return std::nullopt;
  }
  finish_recv(m);
  return m;
}

std::size_t wait_any(std::span<PendingRecv> recvs) {
  TRIOLET_CHECK(!recvs.empty(), "wait_any on no receives");
  Comm* comm = nullptr;
  std::vector<std::pair<int, int>> patterns;
  std::vector<std::size_t> index;  // pattern -> position in recvs
  for (std::size_t i = 0; i < recvs.size(); ++i) {
    auto& r = recvs[i];
    TRIOLET_CHECK(r.valid(), "wait_any on an empty PendingRecv");
    if (r.completed()) return i;
    TRIOLET_CHECK(comm == nullptr || comm == r.comm_,
                  "wait_any handles must share one Comm");
    comm = r.comm_;
    patterns.emplace_back(r.src_, r.tag_);
    index.push_back(i);
  }
  std::size_t which = 0;
  comm->flush_async();  // same liveness rule as recv_message
  Message m = comm->pop_with_services(patterns, which);
  auto& r = recvs[index[which]];
  r.msg_ = std::move(m);
  r.completed_ = true;
  return index[which];
}

PendingSend Comm::isend_segments(int dst, int tag, serial::SegmentedBytes sg,
                                 std::shared_ptr<const void> keepalive) {
  check_dst(dst);
  auto holder = std::make_shared<serial::SegmentedBytes>(std::move(sg));
  return PendingSend(engine().post(
      [this, dst, tag, holder, keepalive = std::move(keepalive)] {
        deliver_segments(dst, tag, std::move(*holder), /*collective=*/-1,
                         kEngineShard);
      }));
}

Comm::Group Comm::split(int color) {
  std::vector<int> colors = allgather(color);
  std::vector<int> members;
  int my_group_rank = -1;
  for (int r = 0; r < size(); ++r) {
    if (colors[static_cast<std::size_t>(r)] == color) {
      if (r == rank_) my_group_rank = static_cast<int>(members.size());
      members.push_back(r);
    }
  }
  TRIOLET_CHECK(my_group_rank >= 0, "split: caller missing from its group");
  return Group(this, std::move(members), my_group_rank);
}

void Comm::barrier() {
  // Dissemination barrier: after round r every rank has (transitively)
  // heard from the 2^(r+1) ranks behind it, so ceil(log2 P) rounds release
  // everyone — no rank is a bottleneck.
  CollectiveScope scope(*this, Collective::kBarrier);
  const int p = size();
  int round = 0;
  for (int dist = 1; dist < p; dist <<= 1, ++round) {
    send_bytes((rank_ + dist) % p, kTagBarrier + round, {});
    (void)recv_message((rank_ - dist + p) % p, kTagBarrier + round);
  }
}

void Comm::bcast_bytes(std::vector<std::byte>& bytes, int root, int tag_base) {
  // Binomial tree: the subtree rooted at virtual rank v spans
  // [v, v + lowest_set_bit(v)); parents forward to children at decreasing
  // power-of-two offsets, so every rank sends at most ceil(log2 P) times.
  const int p = size();
  const int vrank = (rank_ - root + p) % p;
  int mask = 1, round = 0;
  if (vrank != 0) {
    for (; mask < p; mask <<= 1, ++round) {
      if (vrank & mask) {
        Message m = recv_message(world_of(vrank - mask, root),
                                 tag_base + round);
        bytes = std::move(m.payload).take_vector();
        break;
      }
    }
  } else {
    for (; mask < p; mask <<= 1) ++round;
  }
  for (mask >>= 1, --round; mask > 0; mask >>= 1, --round) {
    if (vrank + mask < p) {
      send_bytes(world_of(vrank + mask, root), tag_base + round, bytes);
    }
  }
}

}  // namespace triolet::net
