#include "apps/mriq.hpp"

#include <cmath>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "eden/chunked.hpp"
#include "eden/farm.hpp"
#include "eden/slowmath.hpp"
#include "runtime/parallel.hpp"
#include "support/rng.hpp"

namespace triolet::apps {

namespace {

constexpr float kTwoPi = 6.2831853071795864769f;

/// Contribution of sample k to pixel (px, py, pz), fast-math path.
inline void ft_accumulate(const KSpace& ks, std::size_t k, float px, float py,
                          float pz, float& qr, float& qi) {
  float e = kTwoPi * (ks.kx[k] * px + ks.ky[k] * py + ks.kz[k] * pz);
  qr += ks.phi[k] * std::cos(e);
  qi += ks.phi[k] * std::sin(e);
}

/// Same contribution through Eden's deoptimized trig path.
inline void ft_accumulate_eden(const KSpace& ks, std::size_t k, float px,
                               float py, float pz, float& qr, float& qi) {
  float e = kTwoPi * (ks.kx[k] * px + ks.ky[k] * py + ks.kz[k] * pz);
  qr += ks.phi[k] * eden::eden_cosf(e);
  qi += ks.phi[k] * eden::eden_sinf(e);
}

/// One pixel, full sample sweep (the body shared by all variants).
inline std::pair<float, float> ft_pixel(const KSpace& ks, float px, float py,
                                        float pz) {
  float qr = 0.0f, qi = 0.0f;
  for (std::size_t k = 0; k < ks.kx.size(); ++k) {
    ft_accumulate(ks, k, px, py, pz, qr, qi);
  }
  return {qr, qi};
}

inline std::pair<float, float> ft_pixel_eden(const KSpace& ks, float px,
                                             float py, float pz) {
  float qr = 0.0f, qi = 0.0f;
  for (std::size_t k = 0; k < ks.kx.size(); ++k) {
    ft_accumulate_eden(ks, k, px, py, pz, qr, qi);
  }
  return {qr, qi};
}

/// The paper's Triolet program:
///   [sum(ftcoeff(k, r) for k in ks) for r in zip3(x, y, z)]
/// zip3 keeps the pixel traversal an indexer (partitionable), and the
/// k-space array rides along as broadcast context, the way a Triolet
/// closure would carry it.
auto mriq_iter(const MriqProblem& p) {
  auto pixels = core::zip3(core::from_array(p.x), core::from_array(p.y),
                           core::from_array(p.z));
  return core::map_with(pixels, p.ks, [](const KSpace& ks, const auto& r) {
    auto [px, py, pz] = r;
    return ft_pixel(ks, px, py, pz);
  });
}

MriqResult result_from_pairs(const Array1<std::pair<float, float>>& q) {
  MriqResult out;
  out.qr.reserve(static_cast<std::size_t>(q.size()));
  out.qi.reserve(static_cast<std::size_t>(q.size()));
  for (index_t i = q.lo(); i < q.hi(); ++i) {
    out.qr.push_back(q[i].first);
    out.qi.push_back(q[i].second);
  }
  return out;
}

}  // namespace

/// Eden farm task: one pixel chunk plus (a copy of) the full sample set —
/// "Eden sends each distributed task a copy of all objects that are
/// referenced by its input". Declared in the enclosing namespace so ADL
/// finds the generated field visitor.
struct MriqTask {
  std::vector<float> px, py, pz;
  KSpace ks;
};
TRIOLET_SERIALIZE_FIELDS(MriqTask, px, py, pz, ks)

MriqProblem make_mriq(index_t pixels, index_t samples, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  MriqProblem p;
  p.x = Array1<float>(pixels);
  p.y = Array1<float>(pixels);
  p.z = Array1<float>(pixels);
  for (index_t i = 0; i < pixels; ++i) {
    p.x[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    p.y[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
    p.z[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  p.ks.kx.resize(static_cast<std::size_t>(samples));
  p.ks.ky.resize(static_cast<std::size_t>(samples));
  p.ks.kz.resize(static_cast<std::size_t>(samples));
  p.ks.phi.resize(static_cast<std::size_t>(samples));
  for (std::size_t k = 0; k < p.ks.kx.size(); ++k) {
    p.ks.kx[k] = static_cast<float>(rng.uniform(-8.0, 8.0));
    p.ks.ky[k] = static_cast<float>(rng.uniform(-8.0, 8.0));
    p.ks.kz[k] = static_cast<float>(rng.uniform(-8.0, 8.0));
    p.ks.phi[k] = static_cast<float>(rng.uniform(0.0, 1.0));
  }
  return p;
}

std::vector<float> mriq_phi_mag(const std::vector<float>& phi_r,
                                const std::vector<float>& phi_i) {
  TRIOLET_CHECK(phi_r.size() == phi_i.size(), "phiR/phiI size mismatch");
  auto rr = Array1<float>(0, std::vector<float>(phi_r));
  auto ii = Array1<float>(0, std::vector<float>(phi_i));
  auto mag = core::map(core::zip(core::from_array(rr), core::from_array(ii)),
                       [](const auto& p) {
                         return p.first * p.first + p.second * p.second;
                       });
  auto out = core::build_array1(core::localpar(mag));
  return {out.begin(), out.end()};
}

double mriq_fingerprint(const MriqResult& r) {
  double acc = 0;
  for (std::size_t i = 0; i < r.qr.size(); ++i) {
    acc += static_cast<double>(r.qr[i]) - 0.5 * static_cast<double>(r.qi[i]);
  }
  return acc;
}

double mriq_rel_error(const MriqResult& a, const MriqResult& b) {
  TRIOLET_CHECK(a.qr.size() == b.qr.size(), "result size mismatch");
  double num = 0, den = 0;
  for (std::size_t i = 0; i < a.qr.size(); ++i) {
    double dr = a.qr[i] - b.qr[i], di = a.qi[i] - b.qi[i];
    num += dr * dr + di * di;
    den += static_cast<double>(a.qr[i]) * a.qr[i] +
           static_cast<double>(a.qi[i]) * a.qi[i];
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

MriqResult mriq_seq_c(const MriqProblem& p) {
  const index_t n = p.pixels();
  MriqResult out;
  out.qr.resize(static_cast<std::size_t>(n));
  out.qi.resize(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) {
    auto [qr, qi] = ft_pixel(p.ks, p.x[i], p.y[i], p.z[i]);
    out.qr[static_cast<std::size_t>(i)] = qr;
    out.qi[static_cast<std::size_t>(i)] = qi;
  }
  return out;
}

MriqResult mriq_triolet(const MriqProblem& p, core::ParHint hint) {
  auto q = core::build_array1(core::with_hint(mriq_iter(p), hint));
  return result_from_pairs(q);
}

MriqResult mriq_triolet_dist(net::Comm& comm, const MriqProblem& p) {
  auto q = dist::build_array1(comm, [&] { return core::par(mriq_iter(p)); });
  if (comm.rank() != 0) return {};
  return result_from_pairs(q);
}

MriqResult mriq_eden_seq(const MriqProblem& p) {
  // Chunked-vector style: lists of 1k-element vectors traversed chunk by
  // chunk, trig through the deoptimized path.
  auto cx = eden::ChunkedArray<float>::from_vector(
      {p.x.begin(), p.x.end()});
  auto cy = eden::ChunkedArray<float>::from_vector(
      {p.y.begin(), p.y.end()});
  auto cz = eden::ChunkedArray<float>::from_vector(
      {p.z.begin(), p.z.end()});
  MriqResult out;
  out.qr.reserve(static_cast<std::size_t>(p.pixels()));
  out.qi.reserve(static_cast<std::size_t>(p.pixels()));
  for (std::size_t c = 0; c < cx.chunk_count(); ++c) {
    const auto& vx = cx.chunk(c);
    const auto& vy = cy.chunk(c);
    const auto& vz = cz.chunk(c);
    for (std::size_t i = 0; i < vx.size(); ++i) {
      auto [qr, qi] = ft_pixel_eden(p.ks, vx[i], vy[i], vz[i]);
      out.qr.push_back(qr);
      out.qi.push_back(qi);
    }
  }
  return out;
}

MriqResult mriq_eden_farm(net::Comm& comm, const MriqProblem& p) {
  std::vector<MriqTask> tasks;
  if (comm.rank() == 0) {
    const std::size_t chunk = eden::kChunkSize;
    const auto n = static_cast<std::size_t>(p.pixels());
    for (std::size_t i = 0; i < n; i += chunk) {
      std::size_t hi = std::min(n, i + chunk);
      MriqTask t;
      t.px.assign(p.x.data() + i, p.x.data() + hi);
      t.py.assign(p.y.data() + i, p.y.data() + hi);
      t.pz.assign(p.z.data() + i, p.z.data() + hi);
      t.ks = p.ks;  // full copy per task (Eden closure semantics)
      tasks.push_back(std::move(t));
    }
  }
  using Out = std::vector<std::pair<float, float>>;
  auto results = eden::farm<MriqTask, Out>(comm, tasks, [](const MriqTask& t) {
    Out out;
    out.reserve(t.px.size());
    for (std::size_t i = 0; i < t.px.size(); ++i) {
      out.push_back(ft_pixel_eden(t.ks, t.px[i], t.py[i], t.pz[i]));
    }
    return out;
  });
  if (comm.rank() != 0) return {};
  MriqResult out;
  for (const auto& chunk : results) {
    for (auto [qr, qi] : chunk) {
      out.qr.push_back(qr);
      out.qi.push_back(qi);
    }
  }
  return out;
}

MriqResult mriq_lowlevel(const MriqProblem& p) {
  const index_t n = p.pixels();
  MriqResult out;
  out.qr.resize(static_cast<std::size_t>(n));
  out.qi.resize(static_cast<std::size_t>(n));
  runtime::parallel_for(runtime::current_pool(), 0, n,
                        [&](index_t lo, index_t hi) {
                          for (index_t i = lo; i < hi; ++i) {
                            auto [qr, qi] =
                                ft_pixel(p.ks, p.x[i], p.y[i], p.z[i]);
                            out.qr[static_cast<std::size_t>(i)] = qr;
                            out.qi[static_cast<std::size_t>(i)] = qi;
                          }
                        });
  return out;
}

MriqResult mriq_lowlevel_dist(net::Comm& comm, const MriqProblem& p) {
  // Hand-written scatter / broadcast / compute / gather, the structure the
  // paper describes as "dedicating more code to partitioning data across
  // MPI ranks than to the actual numerical computation" (§4.2).
  const int size = comm.size();
  const int rank = comm.rank();

  std::vector<std::vector<float>> xs, ys, zs;
  if (rank == 0) {
    xs.resize(static_cast<std::size_t>(size));
    ys.resize(static_cast<std::size_t>(size));
    zs.resize(static_cast<std::size_t>(size));
    const index_t n = p.pixels();
    for (int r = 0; r < size; ++r) {
      index_t lo = n * r / size, hi = n * (r + 1) / size;
      xs[static_cast<std::size_t>(r)].assign(p.x.data() + lo, p.x.data() + hi);
      ys[static_cast<std::size_t>(r)].assign(p.y.data() + lo, p.y.data() + hi);
      zs[static_cast<std::size_t>(r)].assign(p.z.data() + lo, p.z.data() + hi);
    }
  }
  std::vector<float> mx = comm.scatter(xs, 0);
  std::vector<float> my = comm.scatter(ys, 0);
  std::vector<float> mz = comm.scatter(zs, 0);
  KSpace ks;
  if (rank == 0) ks = p.ks;
  comm.broadcast(ks, 0);

  std::vector<std::pair<float, float>> part(mx.size());
  runtime::parallel_for(
      runtime::current_pool(), 0, static_cast<index_t>(mx.size()),
      [&](index_t lo, index_t hi) {
        for (index_t i = lo; i < hi; ++i) {
          auto s = static_cast<std::size_t>(i);
          part[s] = ft_pixel(ks, mx[s], my[s], mz[s]);
        }
      });

  auto all = comm.gather(part, 0);
  if (rank != 0) return {};
  MriqResult out;
  for (const auto& chunk : all) {
    for (auto [qr, qi] : chunk) {
      out.qr.push_back(qr);
      out.qi.push_back(qi);
    }
  }
  return out;
}

MriqMeasured measure_mriq(const MriqProblem& p, index_t units) {
  MriqMeasured m;
  const index_t n = p.pixels();
  auto pix = [n, units](index_t u) { return n * u / units; };

  m.seq_c = measure_seconds([&] { (void)mriq_seq_c(p); });
  m.seq_triolet =
      measure_seconds([&] { (void)mriq_triolet(p, core::ParHint::kSeq); });
  m.seq_eden = measure_seconds([&] { (void)mriq_eden_seq(p); }, 2);

  // ---- Triolet: run unit ranges through the fused iterator.
  {
    auto it = mriq_iter(p);
    std::vector<std::pair<float, float>> scratch(static_cast<std::size_t>(n));
    m.triolet.name = "Triolet";
    m.triolet.glyph = 'T';
    m.triolet.unit_seconds = measure_units(units, [&](index_t u) {
      for (index_t i = pix(u); i < pix(u + 1); ++i) {
        scratch[static_cast<std::size_t>(i)] = it.at_ordinal(i);
      }
    });
    m.triolet.input_bytes = [it, pix](index_t ulo, index_t uhi) {
      return static_cast<std::int64_t>(
          serial::wire_size(it.slice(core::Seq{pix(ulo), pix(uhi)})));
    };
  }

  // ---- C+MPI+OpenMP: the raw loop.
  {
    std::vector<std::pair<float, float>> scratch(static_cast<std::size_t>(n));
    m.lowlevel.name = "C+MPI+OpenMP";
    m.lowlevel.glyph = 'C';
    m.lowlevel.unit_seconds = measure_units(units, [&](index_t u) {
      for (index_t i = pix(u); i < pix(u + 1); ++i) {
        scratch[static_cast<std::size_t>(i)] =
            ft_pixel(p.ks, p.x[i], p.y[i], p.z[i]);
      }
    });
    const auto ks_bytes =
        static_cast<std::int64_t>(serial::wire_size(p.ks));
    m.lowlevel.input_bytes = [pix, ks_bytes](index_t ulo, index_t uhi) {
      return 3 * 4 * (pix(uhi) - pix(ulo)) + ks_bytes + 64;
    };
    // MPI sends directly from preallocated buffers; no serializer packing.
    m.lowlevel.net.copy_cost_per_byte = 0.1e-9;
    m.lowlevel.static_sched = true;  // OpenMP static pixel partition
  }

  // ---- Eden: chunked traversal with deoptimized trig; whole-sample-set
  // copies per task; flat farm; stragglers.
  {
    std::vector<std::pair<float, float>> scratch(static_cast<std::size_t>(n));
    m.eden.name = "Eden";
    m.eden.glyph = 'E';
    m.eden.unit_seconds = measure_units(units, [&](index_t u) {
      for (index_t i = pix(u); i < pix(u + 1); ++i) {
        scratch[static_cast<std::size_t>(i)] =
            ft_pixel_eden(p.ks, p.x[i], p.y[i], p.z[i]);
      }
    });
    const auto ks_bytes =
        static_cast<std::int64_t>(serial::wire_size(p.ks));
    m.eden.input_bytes = [pix, ks_bytes](index_t ulo, index_t uhi) {
      // chunk framing: one length header per 1k-element chunk and stream.
      std::int64_t npix = pix(uhi) - pix(ulo);
      std::int64_t frames = 3 * (npix / eden::kChunkSize + 1) * 8;
      return 3 * 4 * npix + ks_bytes + frames + 64;
    };
    m.eden.flat = true;
    m.eden.static_sched = true;
    m.eden.straggler = {0.02, 3.0, 0xEDE11};
  }

  // Common result shape: 8 bytes per pixel plus framing.
  auto result_bytes = [pix](index_t ulo, index_t uhi) {
    return 8 * (pix(uhi) - pix(ulo)) + 32;
  };
  // Root-side merge is a memcpy of the partial into the image.
  auto combine = [pix](index_t ulo, index_t uhi) {
    return 8.0 * static_cast<double>(pix(uhi) - pix(ulo)) * 0.1e-9;
  };
  for (MeasuredSystem* s : {&m.triolet, &m.lowlevel, &m.eden}) {
    s->result_bytes = result_bytes;
    s->combine_seconds = combine;
  }

  m.triolet.net.alloc_multiplier = 3.0;
    m.triolet.net.alloc_threshold_bytes = 128 * 1024;  // GC-style message construction
  m.eden.net.copy_cost_per_byte *= 3.0;  // per-chunk framing and copying
  m.eden.net.fixed_overhead *= 4.0;

  return m;
}

}  // namespace triolet::apps
