#pragma once

// Benchmark driver: turns real measurements into the paper's figures.
//
// The reproduction host has one physical core (see DESIGN.md), so the
// scalability figures are produced by *trace simulation over real
// measurements*:
//
//   1. The benchmark's outer work domain is cut into U fine-grained units.
//      Every unit is executed FOR REAL with the system's actual code
//      (Triolet skeletons / low-level loops / Eden lists) and its duration
//      measured. Summing unit times reproduces the sequential time; any
//      node/core partition is a grouping of units.
//   2. Task input sizes come from the real serializer (sliced iterators for
//      Triolet, raw sub-arrays for MPI, chunked copies for Eden).
//   3. simulate_point() builds the SimTrace a given system would execute on
//      an (nodes x cores) machine — two-level scatter for Triolet and
//      C+MPI+OpenMP, flat master/worker farm for Eden — and replays it
//      against the network model.
//
// Who wins and where curves bend therefore comes from measured compute and
// measured bytes; only the machine constants (latency, bandwidth) are
// modelled, as any simulator must.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "sim/network_model.hpp"
#include "sim/schedule.hpp"
#include "sim/trace.hpp"
#include "support/table.hpp"

namespace triolet::apps {

using index_t = std::int64_t;

/// Everything the simulator needs to know about one system running one
/// benchmark, gathered from real execution.
struct MeasuredSystem {
  std::string name;
  char glyph = '?';

  /// Duration of each fine-grained work unit, measured by running it.
  std::vector<double> unit_seconds;

  /// Serialized size of the task input covering units [ulo, uhi).
  std::function<std::int64_t(index_t ulo, index_t uhi)> input_bytes;

  /// Optional override for decompositions whose input footprint is not a
  /// function of a contiguous unit range (sgemm's 2D block decomposition:
  /// part i of k receives the A-rows and B-rows meeting at its block).
  /// When set, it replaces input_bytes for distribution-size accounting.
  std::function<std::int64_t(int part, int parts)> input_bytes_by_part;

  /// Serialized size of the partial result a node/worker returns for units
  /// [ulo, uhi) (constant for reductions, proportional for builds).
  std::function<std::int64_t(index_t ulo, index_t uhi)> result_bytes;

  /// Work done once at the root before distribution (e.g. sgemm transpose).
  double root_prep_seconds = 0.0;
  /// Whether root prep uses the root node's cores (localpar) or is serial.
  bool prep_parallelizable = false;

  /// Root-side cost of merging the partial result covering [ulo, uhi)
  /// (e.g. adding a histogram, or copying a block into place).
  std::function<double(index_t ulo, index_t uhi)> combine_seconds;

  sim::NetworkModel net;

  /// Eden only: per-task slowdown lottery.
  sim::StragglerModel straggler;

  /// Flat farm (Eden): one rank per core, master coordinates everything.
  /// Two-level (Triolet, C+MPI+OpenMP): one rank per node, threads inside.
  bool flat = false;

  /// Static contiguous intra-node scheduling (OpenMP static / Eden
  /// pre-split) vs dynamic claiming (Triolet work stealing).
  bool static_sched = false;
  /// Refines static_sched to round-robin (OpenMP schedule(static,1)); the
  /// tuned choice for skewed loops like tpacf's triangular sweeps.
  bool cyclic_sched = false;

  /// Eden only: total bytes its runtime can buffer in flight; 0 = no limit.
  /// Exceeding it fails the run (paper §4.3, sgemm at >= 2 nodes).
  std::int64_t buffer_capacity = 0;
};

/// One point of a scaling figure. `seconds` is NaN when the configuration
/// failed (Eden's buffer overflow).
struct ScalePoint {
  int cores = 0;
  double seconds = 0.0;

  bool failed() const { return std::isnan(seconds); }
};

/// Simulates `ms` on nodes x cores_per_node. Single total-core counts <=
/// cores_per_node run on one node.
ScalePoint simulate_point(const MeasuredSystem& ms, int nodes,
                          int cores_per_node);

/// The paper's x-axis: core counts from 1 to nodes*cores, filling one node
/// first, then whole nodes.
std::vector<std::pair<int, int>> standard_machine_points(int max_nodes,
                                                         int cores_per_node);

/// Runs a full scaling series; `seq_c_seconds` is the speedup denominator.
struct ScalingSeries {
  std::string name;
  char glyph;
  std::vector<ScalePoint> points;
};

ScalingSeries run_series(const MeasuredSystem& ms, int max_nodes,
                         int cores_per_node);

/// Renders paper-style output: a table of (cores, time, speedup) rows per
/// system plus an ASCII rendition of the figure.
void print_figure(const std::string& title, double seq_c_seconds,
                  const std::vector<ScalingSeries>& series);

/// Prints a PASS/DEVIATION line for a qualitative expectation taken from
/// the paper ("who wins, by roughly what factor, where crossovers fall").
/// The bench binaries use these to self-report how well each figure's shape
/// reproduced; EXPERIMENTS.md aggregates them.
void shape_check(const std::string& description, bool holds);

/// Speedup at the largest core count of a series (NaN if that point failed).
double final_speedup(const ScalingSeries& s, double seq_c_seconds);

/// The system's sequential-equivalent time: root prep plus the sum of all
/// measured unit durations. Figures use the low-level (C-loop) system's
/// value as the speedup denominator so numerator and denominator come from
/// identically measured code.
double seq_equivalent_seconds(const MeasuredSystem& ms);

/// Measures the wall time of `fn()` with small repetition (median).
double measure_seconds(const std::function<void()>& fn, int repeats = 3);

/// Splits U units into per-unit measured durations by timing `run_unit` on
/// each unit index. The sweep runs `passes` times and keeps each unit's
/// minimum, filtering out OS-preemption spikes (the host has one core, so a
/// context switch inside a 50 us unit would otherwise skew the whole
/// schedule simulation). The first pass doubles as cache warmup.
std::vector<double> measure_units(index_t units,
                                  const std::function<void(index_t)>& run_unit,
                                  int passes = 2);

}  // namespace triolet::apps
