#pragma once

// sgemm (paper §4.3): scaled dense matrix product C = alpha * A * B.
//
// All parallel variants transpose B first so the inner dot product walks
// contiguous rows, then use a 2D block decomposition that "sends each worker
// only the input matrix rows that it needs to compute its output block".
// In Triolet that decomposition is the two-line rows/outerproduct program of
// paper §2; in the low-level variant it is explicit send/recv code; the Eden
// variant transposes sequentially (its distributed transpose does too little
// work per byte to pay off, §4.3) and fails outright when its runtime cannot
// buffer the in-flight matrix data (reproduced via the farm buffer cap).

#include "apps/driver.hpp"
#include "array/array.hpp"
#include "core/hints.hpp"
#include "net/comm.hpp"

namespace triolet::apps {

struct SgemmProblem {
  Array2<float> a;  // n x k
  Array2<float> b;  // k x m
  float alpha = 1.0f;

  index_t n() const { return a.rows(); }
  index_t k() const { return a.cols(); }
  index_t m() const { return b.cols(); }
};

SgemmProblem make_sgemm(index_t n, index_t k, index_t m, std::uint64_t seed);

double sgemm_fingerprint(const Array2<float>& c);
double sgemm_rel_error(const Array2<float>& ref, const Array2<float>& got);

Array2<float> sgemm_seq_c(const SgemmProblem& p);
Array2<float> sgemm_triolet(const SgemmProblem& p, core::ParHint hint);
Array2<float> sgemm_triolet_dist(net::Comm& comm, const SgemmProblem& p);
Array2<float> sgemm_eden_seq(const SgemmProblem& p);
Array2<float> sgemm_eden_farm(net::Comm& comm, const SgemmProblem& p);
Array2<float> sgemm_lowlevel(const SgemmProblem& p);
Array2<float> sgemm_lowlevel_dist(net::Comm& comm, const SgemmProblem& p);

struct SgemmMeasured {
  double seq_c = 0, seq_triolet = 0, seq_eden = 0;
  MeasuredSystem triolet, lowlevel, eden;
};
SgemmMeasured measure_sgemm(const SgemmProblem& p, index_t units);

}  // namespace triolet::apps
