#pragma once

// cutcp (paper §4.5): cutoff Coulombic potential on a 3D lattice.
//
// Every charged atom contributes potential to the grid points within cutoff
// distance c; points farther away are skipped. The body is "essentially a
// floating-point histogram: it loops over atoms, loops over nearby grid
// points, skips points that are not within distance c, and updates the grid
// at the remaining points" — nested loops and conditionals in C, nested
// traversals (concat_map + filter) feeding float_histogram in Triolet.
//
// The output grid is large relative to the computation, so summing per-node
// grids at the root dominates scaling (the early saturation of Figure 8).

#include "apps/driver.hpp"
#include "array/array.hpp"
#include "core/hints.hpp"
#include "net/comm.hpp"

namespace triolet::apps {

struct Atom {
  float x = 0, y = 0, z = 0, q = 0;
  bool operator==(const Atom&) const = default;
};

struct GridSpec {
  index_t nx = 0, ny = 0, nz = 0;  // lattice points per axis
  float spacing = 0.5f;            // lattice pitch
  float cutoff = 4.0f;             // interaction radius

  index_t cells() const { return nx * ny * nz; }
  bool operator==(const GridSpec&) const = default;
};

struct CutcpProblem {
  Array1<Atom> atoms;
  GridSpec grid;
};

CutcpProblem make_cutcp(index_t atoms, index_t nx, index_t ny, index_t nz,
                        float cutoff, std::uint64_t seed);

using CutcpGrid = Array1<float>;  // flattened (z*ny + y)*nx + x

double cutcp_fingerprint(const CutcpGrid& g);
double cutcp_rel_error(const CutcpGrid& ref, const CutcpGrid& got);

CutcpGrid cutcp_seq_c(const CutcpProblem& p);
CutcpGrid cutcp_triolet(const CutcpProblem& p, core::ParHint hint);
CutcpGrid cutcp_triolet_dist(net::Comm& comm, const CutcpProblem& p);
CutcpGrid cutcp_eden_seq(const CutcpProblem& p);
CutcpGrid cutcp_eden_farm(net::Comm& comm, const CutcpProblem& p);
CutcpGrid cutcp_lowlevel(const CutcpProblem& p);
CutcpGrid cutcp_lowlevel_dist(net::Comm& comm, const CutcpProblem& p);

struct CutcpMeasured {
  double seq_c = 0, seq_triolet = 0, seq_eden = 0;
  MeasuredSystem triolet, lowlevel, eden;
};
CutcpMeasured measure_cutcp(const CutcpProblem& p, index_t units);

}  // namespace triolet::apps
