#pragma once

// mri-q (paper §4.2): non-uniform 3D inverse Fourier transform.
//
// For every image pixel r = (x, y, z), sum the contribution of every
// k-space sample k:
//     Q(r) = sum_k  phi[k] * exp(2*pi*i * (kx*x + ky*y + kz*z))
// accumulated as separate real and imaginary parts.
//
// Variants:
//   mriq_seq_c          plain C-style loop nest (speedup denominator)
//   mriq_triolet        the paper's two-line skeleton program; hint selects
//                       sequential / threaded execution
//   mriq_triolet_dist   the same program under par() on a cluster
//   mriq_eden_seq       chunked-vector Eden port with the deoptimized
//                       sinf/cosf path (§4.2)
//   mriq_eden_farm      Eden's flat process farm over pixel chunks
//   mriq_lowlevel       hand-partitioned threads (the OpenMP analogue)
//   mriq_lowlevel_dist  scatter/broadcast/gather point-to-point code
//                       (the C+MPI+OpenMP analogue)

#include "apps/driver.hpp"
#include "array/array.hpp"
#include "core/hints.hpp"
#include "net/comm.hpp"

namespace triolet::apps {

struct KSpace {
  std::vector<float> kx, ky, kz, phi;
  bool operator==(const KSpace&) const = default;
};
TRIOLET_SERIALIZE_FIELDS(KSpace, kx, ky, kz, phi)

struct MriqProblem {
  Array1<float> x, y, z;  // pixel coordinates
  KSpace ks;              // sample trajectory + magnitudes

  index_t pixels() const { return x.size(); }
  index_t samples() const { return static_cast<index_t>(ks.kx.size()); }
};

struct MriqResult {
  std::vector<float> qr, qi;
};

MriqProblem make_mriq(index_t pixels, index_t samples, std::uint64_t seed);

/// Parboil's ComputePhiMag pre-kernel: phi[k] = phiR[k]^2 + phiI[k]^2,
/// written as a Triolet zip/map pipeline. make_mriq synthesizes phi
/// directly; this kernel is exposed for inputs given as complex samples.
std::vector<float> mriq_phi_mag(const std::vector<float>& phi_r,
                                const std::vector<float>& phi_i);

/// Scalar fingerprint for cross-variant validation.
double mriq_fingerprint(const MriqResult& r);

/// Relative L2 error between two results.
double mriq_rel_error(const MriqResult& a, const MriqResult& b);

MriqResult mriq_seq_c(const MriqProblem& p);
MriqResult mriq_triolet(const MriqProblem& p, core::ParHint hint);
MriqResult mriq_triolet_dist(net::Comm& comm, const MriqProblem& p);
MriqResult mriq_eden_seq(const MriqProblem& p);
MriqResult mriq_eden_farm(net::Comm& comm, const MriqProblem& p);
MriqResult mriq_lowlevel(const MriqProblem& p);
MriqResult mriq_lowlevel_dist(net::Comm& comm, const MriqProblem& p);

/// Builds the three MeasuredSystem profiles (Triolet, C+MPI+OpenMP, Eden)
/// for the scaling figure by executing `units` pixel-range work units with
/// each system's real code and measuring durations and message sizes.
struct MriqMeasured {
  double seq_c = 0, seq_triolet = 0, seq_eden = 0;  // Figure 3 columns
  MeasuredSystem triolet, lowlevel, eden;
};
MriqMeasured measure_mriq(const MriqProblem& p, index_t units);

}  // namespace triolet::apps
