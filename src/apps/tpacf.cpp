#include "apps/tpacf.hpp"

#include <cmath>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "eden/chunked.hpp"
#include "eden/farm.hpp"
#include "eden/slowmath.hpp"
#include "runtime/parallel.hpp"
#include "support/rng.hpp"

namespace triolet::apps {

namespace {

constexpr double kPi = 3.14159265358979323846;

/// Angular-separation bin of a point pair (the `score` of Figure 6).
inline index_t score(Vec3 u, Vec3 v, index_t nbins) {
  double dot = static_cast<double>(u.x) * v.x + static_cast<double>(u.y) * v.y +
               static_cast<double>(u.z) * v.z;
  dot = std::min(1.0, std::max(-1.0, dot));
  double angle = std::acos(dot);
  auto bin = static_cast<index_t>(angle / kPi * static_cast<double>(nbins));
  return std::min(bin, nbins - 1);
}

inline index_t score_eden(Vec3 u, Vec3 v, index_t nbins) {
  double dot = static_cast<double>(u.x) * v.x + static_cast<double>(u.y) * v.y +
               static_cast<double>(u.z) * v.z;
  dot = std::min(1.0, std::max(-1.0, dot));
  double angle = eden::eden_acos(dot);
  auto bin = static_cast<index_t>(angle / kPi * static_cast<double>(nbins));
  return std::min(bin, nbins - 1);
}

/// Decodes a flattened outer index into its pair loop: which sets it
/// correlates, the fixed element u, the inner range, and the bin offset.
struct PairJob {
  const Vec3* set_b;
  Vec3 u;
  index_t lo, hi;       // inner element range in set_b
  index_t bin_offset;   // 0 = DD, nbins = DR, 2*nbins = RR
};

inline PairJob decode_job(const TpacfProblem& p, index_t g) {
  const index_t n = p.points();
  const index_t r = p.sets();
  const index_t job = g / n;
  const index_t i = g % n;
  PairJob out{};
  if (job == 0) {  // DD: unique pairs of obs
    out.set_b = p.obs.data();
    out.u = p.obs[static_cast<std::size_t>(i)];
    out.lo = i + 1;
    out.hi = n;
    out.bin_offset = 0;
  } else if (job <= r) {  // DR_j: obs x rand_j, full cross product
    const auto& rand = p.rands[static_cast<std::size_t>(job - 1)];
    out.set_b = rand.data();
    out.u = p.obs[static_cast<std::size_t>(i)];
    out.lo = 0;
    out.hi = n;
    out.bin_offset = p.nbins;
  } else {  // RR_j: unique pairs of rand_j
    const auto& rand = p.rands[static_cast<std::size_t>(job - r - 1)];
    out.set_b = rand.data();
    out.u = rand[static_cast<std::size_t>(i)];
    out.lo = i + 1;
    out.hi = n;
    out.bin_offset = 2 * p.nbins;
  }
  return out;
}

/// The Triolet pair iterator (the Figure 6 program, flattened): an indexer
/// over (job, element) whose inner loops generate that element's pair bins.
/// The problem rides along as broadcast context; inner loops hold borrowed
/// pointers into it, valid for the lifetime of the traversal on whichever
/// node runs it.
auto tpacf_iter(const TpacfProblem& p) {
  return core::concat_map_with(
      core::range(0, p.outer_size()), p,
      [](const TpacfProblem& d, index_t g) {
        PairJob job = decode_job(d, g);
        const index_t nbins = d.nbins;
        return core::map(core::range(job.lo, job.hi),
                         [job, nbins](index_t j) {
                           return job.bin_offset +
                                  score(job.u, job.set_b[j], nbins);
                         });
      });
}

/// Eden farm task: a flattened outer range plus a full copy of the problem.
struct TpacfTask {
  index_t lo = 0, hi = 0;
  TpacfProblem data;
};
TRIOLET_SERIALIZE_FIELDS(TpacfTask, lo, hi, data)

/// Eden's unfused pipeline: each outer element first *generates* its
/// collection of pair scores — materialized as a chunked list of boxed
/// vectors, the paper's "lists of 1k-element vectors" representation — and
/// the histogram then consumes that intermediate. This is the multi-stage
/// generate-then-consume structure of the pre-fusion §1 example.
std::vector<std::int64_t> tpacf_range_eden(const TpacfProblem& p, index_t lo,
                                           index_t hi) {
  std::vector<std::int64_t> h(static_cast<std::size_t>(3 * p.nbins), 0);
  for (index_t g = lo; g < hi; ++g) {
    PairJob job = decode_job(p, g);
    std::vector<index_t> generated;  // stage 1a: comprehension output
    for (index_t j = job.lo; j < job.hi; ++j) {
      generated.push_back(job.bin_offset +
                          score_eden(job.u, job.set_b[j], p.nbins));
    }
    // stage 1b: the runtime re-chunks the list into boxed 64-element blocks.
    auto chunked = eden::ChunkedArray<index_t>::from_vector(generated, 64);
    // stage 2: the histogram consumer folds over the chunked intermediate.
    chunked.for_each([&](index_t b) { h[static_cast<std::size_t>(b)]++; });
  }
  return h;
}

void tpacf_range_c(const TpacfProblem& p, index_t lo, index_t hi,
                   std::int64_t* h) {
  for (index_t g = lo; g < hi; ++g) {
    PairJob job = decode_job(p, g);
    for (index_t j = job.lo; j < job.hi; ++j) {
      h[job.bin_offset + score(job.u, job.set_b[j], p.nbins)]++;
    }
  }
}

}  // namespace

TpacfProblem make_tpacf(index_t points, index_t random_sets, index_t nbins,
                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  auto sphere_point = [&rng] {
    // Uniform on the sphere via normalized Gaussian triple.
    for (;;) {
      float x = static_cast<float>(rng.normal());
      float y = static_cast<float>(rng.normal());
      float z = static_cast<float>(rng.normal());
      float len = std::sqrt(x * x + y * y + z * z);
      if (len > 1e-6f) return Vec3{x / len, y / len, z / len};
    }
  };
  TpacfProblem p;
  p.nbins = nbins;
  p.obs.resize(static_cast<std::size_t>(points));
  for (auto& v : p.obs) v = sphere_point();
  p.rands.resize(static_cast<std::size_t>(random_sets));
  for (auto& set : p.rands) {
    set.resize(static_cast<std::size_t>(points));
    for (auto& v : set) v = sphere_point();
  }
  return p;
}

double tpacf_fingerprint(const TpacfHist& h) {
  double acc = 0;
  for (index_t i = 0; i < h.size(); ++i) {
    acc += static_cast<double>(h[i]) * static_cast<double>(1 + i % 13);
  }
  return acc;
}

TpacfHist tpacf_seq_c(const TpacfProblem& p) {
  TpacfHist h(3 * p.nbins, 0);
  tpacf_range_c(p, 0, p.outer_size(), &h[0]);
  return h;
}

TpacfHist tpacf_triolet(const TpacfProblem& p, core::ParHint hint) {
  return core::histogram(3 * p.nbins, core::with_hint(tpacf_iter(p), hint));
}

TpacfHist tpacf_triolet_dist(net::Comm& comm, const TpacfProblem& p) {
  return dist::histogram(comm, 3 * p.nbins,
                         [&] { return core::par(tpacf_iter(p)); });
}

TpacfHist tpacf_triolet_dist_fig6(net::Comm& comm, const TpacfProblem& p) {
  const index_t nbins = p.nbins;
  const index_t n = p.points();

  // corr1 as a value computation: the full DR_j + RR_j histogram of one
  // random set, via the fused pair iterators, threaded locally.
  auto corr1 = [nbins, n](const TpacfProblem& d, index_t j) {
    // DR_j: obs x rand_j.
    auto dr_pairs = core::concat_map_with(
        core::range(0, n), std::pair(&d, j),
        [nbins, n](const auto& ctx, index_t i) {
          const TpacfProblem& dd = *ctx.first;
          const Vec3* rand = dd.rands[static_cast<std::size_t>(ctx.second)].data();
          Vec3 u = dd.obs[static_cast<std::size_t>(i)];
          return core::map(core::range(0, n), [u, rand, nbins](index_t k) {
            return score(u, rand[k], nbins);
          });
        });
    // RR_j: unique pairs within rand_j.
    auto rr_pairs = core::concat_map_with(
        core::range(0, n), std::pair(&d, j),
        [nbins, n](const auto& ctx, index_t i) {
          const TpacfProblem& dd = *ctx.first;
          const Vec3* rand = dd.rands[static_cast<std::size_t>(ctx.second)].data();
          Vec3 u = rand[i];
          return core::map(core::range(i + 1, n), [u, rand, nbins](index_t k) {
            return score(u, rand[k], nbins);
          });
        });
    auto dr = core::histogram(nbins, core::localpar(dr_pairs));
    auto rr = core::histogram(nbins, core::localpar(rr_pairs));
    std::vector<std::int64_t> out(static_cast<std::size_t>(2 * nbins), 0);
    for (index_t b = 0; b < nbins; ++b) {
      out[static_cast<std::size_t>(b)] = dr[b];
      out[static_cast<std::size_t>(nbins + b)] = rr[b];
    }
    return out;
  };

  // par(corr1(r) for r in rands), reduced with histogram addition: one
  // outer task per random data set, distributed across nodes.
  auto add = [](std::vector<std::int64_t> a,
                const std::vector<std::int64_t>& b) {
    if (a.size() < b.size()) a.resize(b.size(), 0);
    for (std::size_t i = 0; i < b.size(); ++i) a[i] += b[i];
    return a;
  };
  auto rand_hists = dist::reduce(
      comm,
      [&] {
        return core::par(core::map_with(
            core::range(0, p.sets()), p,
            [corr1](const TpacfProblem& d, index_t j) { return corr1(d, j); }));
      },
      std::vector<std::int64_t>(static_cast<std::size_t>(2 * nbins), 0), add);

  if (comm.rank() != 0) return {};

  // DD at the root, threaded (selfCorrelation of the observed set).
  auto dd_pairs = core::concat_map_with(
      core::range(0, n), p, [nbins, n](const TpacfProblem& d, index_t i) {
        const Vec3* obs = d.obs.data();
        Vec3 u = obs[i];
        return core::map(core::range(i + 1, n), [u, obs, nbins](index_t k) {
          return score(u, obs[k], nbins);
        });
      });
  auto dd = core::histogram(nbins, core::localpar(dd_pairs));

  TpacfHist out(3 * nbins, 0);
  for (index_t b = 0; b < nbins; ++b) {
    out[b] = dd[b];
    out[nbins + b] = rand_hists[static_cast<std::size_t>(b)];
    out[2 * nbins + b] = rand_hists[static_cast<std::size_t>(nbins + b)];
  }
  return out;
}

TpacfHist tpacf_eden_seq(const TpacfProblem& p) {
  auto h = tpacf_range_eden(p, 0, p.outer_size());
  return TpacfHist(0, std::move(h));
}

TpacfHist tpacf_eden_farm(net::Comm& comm, const TpacfProblem& p) {
  std::vector<TpacfTask> tasks;
  const int workers = std::max(1, comm.size() - 1);
  if (comm.rank() == 0) {
    const index_t total = p.outer_size();
    for (int w = 0; w < workers; ++w) {
      TpacfTask t;
      t.lo = total * w / workers;
      t.hi = total * (w + 1) / workers;
      t.data = p;  // full problem copy per task (Eden closure semantics)
      tasks.push_back(std::move(t));
    }
  }
  using Out = std::vector<std::int64_t>;
  auto results = eden::farm<TpacfTask, Out>(comm, tasks, [](const TpacfTask& t) {
    return tpacf_range_eden(t.data, t.lo, t.hi);
  });
  if (comm.rank() != 0) return {};
  TpacfHist h(3 * p.nbins, 0);
  for (const auto& part : results) {
    for (index_t i = 0; i < h.size(); ++i) {
      h[i] += part[static_cast<std::size_t>(i)];
    }
  }
  return h;
}

TpacfHist tpacf_lowlevel(const TpacfProblem& p) {
  auto& pool = runtime::current_pool();
  // Privatized histograms, as the paper notes the C+MPI+OpenMP code must
  // do by examining the thread count.
  runtime::PerThread<std::vector<std::int64_t>> priv(
      pool, std::vector<std::int64_t>(static_cast<std::size_t>(3 * p.nbins), 0));
  runtime::parallel_for(pool, 0, p.outer_size(), [&](index_t lo, index_t hi) {
    tpacf_range_c(p, lo, hi, priv.local().data());
  });
  TpacfHist h(3 * p.nbins, 0);
  for (const auto& part : priv.slots()) {
    for (index_t i = 0; i < h.size(); ++i) h[i] += part[static_cast<std::size_t>(i)];
  }
  return h;
}

TpacfHist tpacf_lowlevel_dist(net::Comm& comm, const TpacfProblem& p) {
  constexpr int kTagRange = 400, kTagHist = 401;
  const int size = comm.size();
  const int rank = comm.rank();

  TpacfProblem local;
  std::pair<index_t, index_t> range;
  if (rank == 0) {
    const index_t total = p.outer_size();
    for (int r = 1; r < size; ++r) {
      comm.send(r, kTagRange,
                std::pair<index_t, index_t>{total * r / size,
                                            total * (r + 1) / size});
      comm.send(r, kTagRange + 1, p);  // broadcast-style full data
    }
    local = p;
    range = {0, total / size};
  } else {
    range = comm.recv<std::pair<index_t, index_t>>(0, kTagRange);
    local = comm.recv<TpacfProblem>(0, kTagRange + 1);
  }

  auto& pool = runtime::current_pool();
  runtime::PerThread<std::vector<std::int64_t>> priv(
      pool,
      std::vector<std::int64_t>(static_cast<std::size_t>(3 * local.nbins), 0));
  runtime::parallel_for(pool, range.first, range.second,
                        [&](index_t lo, index_t hi) {
                          tpacf_range_c(local, lo, hi, priv.local().data());
                        });
  std::vector<std::int64_t> part(static_cast<std::size_t>(3 * local.nbins), 0);
  for (const auto& s : priv.slots()) {
    for (std::size_t i = 0; i < part.size(); ++i) part[i] += s[i];
  }

  if (rank != 0) {
    comm.send(0, kTagHist, part);
    return {};
  }
  for (int r = 1; r < size; ++r) {
    auto other = comm.recv<std::vector<std::int64_t>>(r, kTagHist);
    for (std::size_t i = 0; i < part.size(); ++i) part[i] += other[i];
  }
  return TpacfHist(0, std::move(part));
}

TpacfMeasured measure_tpacf(const TpacfProblem& p, index_t units) {
  TpacfMeasured m;
  const index_t total = p.outer_size();
  auto at = [total, units](index_t u) { return total * u / units; };
  const auto data_bytes = static_cast<std::int64_t>(serial::wire_size(p));
  const auto hist_bytes = static_cast<std::int64_t>(3 * p.nbins * 8 + 32);

  m.seq_c = measure_seconds([&] { (void)tpacf_seq_c(p); });
  m.seq_triolet =
      measure_seconds([&] { (void)tpacf_triolet(p, core::ParHint::kSeq); });
  m.seq_eden = measure_seconds([&] { (void)tpacf_eden_seq(p); }, 2);

  // ---- Triolet: unit ranges through the fused nested iterator.
  {
    auto it = tpacf_iter(p);
    std::vector<std::int64_t> sink(static_cast<std::size_t>(3 * p.nbins), 0);
    m.triolet.name = "Triolet";
    m.triolet.glyph = 'T';
    m.triolet.unit_seconds = measure_units(units, [&](index_t u) {
      core::visit_ordinals(it, at(u), at(u + 1),
                           [&](index_t bin) { sink[static_cast<std::size_t>(bin)]++; });
    });
    m.triolet.input_bytes = [it, at](index_t ulo, index_t uhi) {
      return static_cast<std::int64_t>(
          serial::wire_size(it.slice(core::Seq{at(ulo), at(uhi)})));
    };
    m.triolet.net.alloc_multiplier = 3.0;
    m.triolet.net.alloc_threshold_bytes = 128 * 1024;
  }

  // ---- C+MPI+OpenMP.
  {
    std::vector<std::int64_t> sink(static_cast<std::size_t>(3 * p.nbins), 0);
    m.lowlevel.name = "C+MPI+OpenMP";
    m.lowlevel.glyph = 'C';
    m.lowlevel.unit_seconds = measure_units(units, [&](index_t u) {
      tpacf_range_c(p, at(u), at(u + 1), sink.data());
    });
    m.lowlevel.input_bytes = [data_bytes](index_t, index_t) {
      return data_bytes + 64;  // full point data broadcast, tiny
    };
    // MPI sends directly from preallocated buffers; no serializer packing.
    m.lowlevel.net.copy_cost_per_byte = 0.1e-9;
    m.lowlevel.static_sched = true;
    m.lowlevel.cyclic_sched = true;  // schedule(static,1) on triangular loops
  }

  // ---- Eden.
  {
    m.eden.name = "Eden";
    m.eden.glyph = 'E';
    m.eden.unit_seconds = measure_units(units, [&](index_t u) {
      (void)tpacf_range_eden(p, at(u), at(u + 1));
    });
    m.eden.input_bytes = [data_bytes](index_t, index_t) {
      return data_bytes + 256;  // full problem copy per task
    };
    m.eden.flat = true;
    m.eden.static_sched = true;
    m.eden.straggler = {0.02, 3.0, 0xEDE13};
    m.eden.net.copy_cost_per_byte *= 3.0;
    m.eden.net.fixed_overhead *= 4.0;
  }

  auto result_bytes = [hist_bytes](index_t, index_t) { return hist_bytes; };
  auto combine = [&p](index_t, index_t) {
    return static_cast<double>(3 * p.nbins) * 1e-9;
  };
  for (MeasuredSystem* s : {&m.triolet, &m.lowlevel, &m.eden}) {
    s->result_bytes = result_bytes;
    s->combine_seconds = combine;
  }
  return m;
}

}  // namespace triolet::apps
