#pragma once

// tpacf (paper §4.4): two-point angular correlation function.
//
// Given one observed set and R random sets of points on the unit sphere,
// three families of histograms of pairwise angular separations are computed:
//   DD   the observed set against itself (unique pairs, triangular loop)
//   DR_j the observed set against each random set j (full cross product)
//   RR_j each random set against itself (triangular loop)
// All pair scores land in one histogram of 3*nbins cells (kind-offset bins),
// mirroring the paper's three parallel histogramming loops whose common code
// is factored into one correlation function (Figure 6).
//
// The outer iteration space is the flattened (job, element) domain, so work
// partitions across data sets *and* across elements of a data set, as the
// paper requires.

#include "apps/driver.hpp"
#include "array/array.hpp"
#include "core/hints.hpp"
#include "net/comm.hpp"

namespace triolet::apps {

struct Vec3 {
  float x = 0, y = 0, z = 0;
  bool operator==(const Vec3&) const = default;
};

struct TpacfProblem {
  std::vector<Vec3> obs;
  std::vector<std::vector<Vec3>> rands;
  index_t nbins = 32;

  index_t points() const { return static_cast<index_t>(obs.size()); }
  index_t sets() const { return static_cast<index_t>(rands.size()); }
  /// jobs: 1 DD + R DR + R RR, each over `points()` outer elements.
  index_t jobs() const { return 1 + 2 * sets(); }
  index_t outer_size() const { return jobs() * points(); }
};
TRIOLET_SERIALIZE_FIELDS(TpacfProblem, obs, rands, nbins)

TpacfProblem make_tpacf(index_t points, index_t random_sets, index_t nbins,
                        std::uint64_t seed);

using TpacfHist = Array1<std::int64_t>;  // 3 * nbins cells: DD | DR | RR

double tpacf_fingerprint(const TpacfHist& h);

TpacfHist tpacf_seq_c(const TpacfProblem& p);
TpacfHist tpacf_triolet(const TpacfProblem& p, core::ParHint hint);
TpacfHist tpacf_triolet_dist(net::Comm& comm, const TpacfProblem& p);

/// The Figure 6 decomposition verbatim: DD computed at the root with
/// localpar; DR_j and RR_j distributed with par *across the random data
/// sets* (one outer task per set), each set's correlation running with
/// localpar threads inside its node — randomSetsCorrelation's
/// reduce(add, empty, par(corr1(r) for r in rands)).
TpacfHist tpacf_triolet_dist_fig6(net::Comm& comm, const TpacfProblem& p);
TpacfHist tpacf_eden_seq(const TpacfProblem& p);
TpacfHist tpacf_eden_farm(net::Comm& comm, const TpacfProblem& p);
TpacfHist tpacf_lowlevel(const TpacfProblem& p);
TpacfHist tpacf_lowlevel_dist(net::Comm& comm, const TpacfProblem& p);

struct TpacfMeasured {
  double seq_c = 0, seq_triolet = 0, seq_eden = 0;
  MeasuredSystem triolet, lowlevel, eden;
};
TpacfMeasured measure_tpacf(const TpacfProblem& p, index_t units);

}  // namespace triolet::apps
