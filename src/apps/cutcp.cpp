#include "apps/cutcp.hpp"

#include <cmath>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "eden/farm.hpp"
#include "runtime/parallel.hpp"
#include "support/rng.hpp"

namespace triolet::apps {

namespace {

/// Softened cutoff Coulomb kernel: s(r) = q * (1 - (r/c)^2)^2 / max(r, eps).
inline float potential(float q, float r2, float inv_cutoff2, float eps) {
  float t = 1.0f - r2 * inv_cutoff2;
  float r = std::sqrt(r2);
  return q * t * t / std::max(r, eps);
}

/// Axis-aligned box of lattice points within cutoff of atom `a`.
inline core::Dim3 neighborhood(const GridSpec& g, const Atom& a) {
  auto clampi = [](index_t v, index_t lo, index_t hi) {
    return std::min(std::max(v, lo), hi);
  };
  auto lo = [&](float c, index_t n) {
    return clampi(static_cast<index_t>(std::ceil((c - g.cutoff) / g.spacing)),
                  0, n);
  };
  auto hi = [&](float c, index_t n) {
    return clampi(static_cast<index_t>(std::floor((c + g.cutoff) / g.spacing)) +
                      1,
                  0, n);
  };
  return core::Dim3{lo(a.z, g.nz), hi(a.z, g.nz), lo(a.y, g.ny),
                    hi(a.y, g.ny), lo(a.x, g.nx), hi(a.x, g.nx)};
}

/// The Triolet program: a nested traversal per atom over its neighborhood
/// box, a filter for the cutoff sphere, and a map to (cell, weight) pairs —
/// fused into the outer parallel loop and consumed by float_histogram.
auto cutcp_iter(const Array1<Atom>& atoms, GridSpec g) {
  const float cutoff2 = g.cutoff * g.cutoff;
  const float inv_cutoff2 = 1.0f / cutoff2;
  const float eps = 0.25f * g.spacing;
  return core::concat_map(core::from_array(atoms), [g, cutoff2, inv_cutoff2,
                                                    eps](Atom a) {
    auto cells = core::map(
        core::indices(neighborhood(g, a)), [g, a](core::Index3 c) {
          float dx = static_cast<float>(c.x) * g.spacing - a.x;
          float dy = static_cast<float>(c.y) * g.spacing - a.y;
          float dz = static_cast<float>(c.z) * g.spacing - a.z;
          float r2 = dx * dx + dy * dy + dz * dz;
          index_t cell = (c.z * g.ny + c.y) * g.nx + c.x;
          return std::pair<index_t, float>(cell, r2);
        });
    auto near = core::filter(
        cells, [cutoff2](const std::pair<index_t, float>& cw) {
          return cw.second < cutoff2;
        });
    return core::map(near, [a, inv_cutoff2,
                            eps](const std::pair<index_t, float>& cw) {
      return std::pair<index_t, float>(
          cw.first, potential(a.q, cw.second, inv_cutoff2, eps));
    });
  });
}

/// Plain loop nest shared by the C and low-level variants.
void cutcp_range_c(const CutcpProblem& p, index_t lo, index_t hi, float* grid) {
  const GridSpec& g = p.grid;
  const float cutoff2 = g.cutoff * g.cutoff;
  const float inv_cutoff2 = 1.0f / cutoff2;
  const float eps = 0.25f * g.spacing;
  for (index_t i = lo; i < hi; ++i) {
    const Atom a = p.atoms[i];
    core::Dim3 box = neighborhood(g, a);
    for (index_t z = box.z0; z < box.z1; ++z) {
      float dz = static_cast<float>(z) * g.spacing - a.z;
      for (index_t y = box.y0; y < box.y1; ++y) {
        float dy = static_cast<float>(y) * g.spacing - a.y;
        for (index_t x = box.x0; x < box.x1; ++x) {
          float dx = static_cast<float>(x) * g.spacing - a.x;
          float r2 = dx * dx + dy * dy + dz * dz;
          if (r2 < cutoff2) {
            grid[(z * g.ny + y) * g.nx + x] +=
                potential(a.q, r2, inv_cutoff2, eps);
          }
        }
      }
    }
  }
}

/// Eden's version: a list-comprehension-shaped pipeline that materializes
/// the (cell, weight) pairs of each atom into a boxed intermediate before
/// folding them into the grid — the multi-stage generate-then-consume
/// structure the paper's §1 example has before fusion.
void cutcp_range_eden(const CutcpProblem& p, index_t lo, index_t hi,
                      float* grid) {
  const GridSpec& g = p.grid;
  const float cutoff2 = g.cutoff * g.cutoff;
  const float inv_cutoff2 = 1.0f / cutoff2;
  const float eps = 0.25f * g.spacing;
  for (index_t i = lo; i < hi; ++i) {
    const Atom a = p.atoms[i];
    core::Dim3 box = neighborhood(g, a);
    // Stage 1: generate the intermediate collection (heap traffic per atom).
    std::vector<std::pair<index_t, float>> pairs;
    for (index_t z = box.z0; z < box.z1; ++z) {
      for (index_t y = box.y0; y < box.y1; ++y) {
        for (index_t x = box.x0; x < box.x1; ++x) {
          float dx = static_cast<float>(x) * g.spacing - a.x;
          float dy = static_cast<float>(y) * g.spacing - a.y;
          float dz = static_cast<float>(z) * g.spacing - a.z;
          float r2 = dx * dx + dy * dy + dz * dz;
          if (r2 < cutoff2) {
            pairs.emplace_back(
                (z * g.ny + y) * g.nx + x,
                a.q * static_cast<float>(
                          (1.0L - static_cast<long double>(r2) * inv_cutoff2) *
                          (1.0L - static_cast<long double>(r2) * inv_cutoff2) /
                          std::max(sqrtl(static_cast<long double>(r2)),
                                   static_cast<long double>(eps))));
          }
        }
      }
    }
    pairs.shrink_to_fit();  // per-atom reallocation churn
    // Stage 2: consume it.
    for (auto [cell, w] : pairs) grid[cell] += w;
  }
}

struct CutcpTask {
  Array1<Atom> atoms;
  GridSpec grid;
};
TRIOLET_SERIALIZE_FIELDS(CutcpTask, atoms, grid)

}  // namespace

CutcpProblem make_cutcp(index_t atoms, index_t nx, index_t ny, index_t nz,
                        float cutoff, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  CutcpProblem p;
  p.grid.nx = nx;
  p.grid.ny = ny;
  p.grid.nz = nz;
  p.grid.spacing = 0.5f;
  p.grid.cutoff = cutoff;
  p.atoms = Array1<Atom>(atoms);
  const float wx = static_cast<float>(nx - 1) * p.grid.spacing;
  const float wy = static_cast<float>(ny - 1) * p.grid.spacing;
  const float wz = static_cast<float>(nz - 1) * p.grid.spacing;
  for (index_t i = 0; i < atoms; ++i) {
    p.atoms[i] = Atom{static_cast<float>(rng.uniform(0, wx)),
                     static_cast<float>(rng.uniform(0, wy)),
                     static_cast<float>(rng.uniform(0, wz)),
                     static_cast<float>(rng.uniform(-1, 1))};
  }
  return p;
}

double cutcp_fingerprint(const CutcpGrid& g) {
  double acc = 0;
  for (index_t i = 0; i < g.size(); ++i) {
    acc += static_cast<double>(g[i]) * static_cast<double>(1 + i % 11);
  }
  return acc;
}

double cutcp_rel_error(const CutcpGrid& ref, const CutcpGrid& got) {
  TRIOLET_CHECK(ref.size() == got.size(), "grid size mismatch");
  double num = 0, den = 0;
  for (index_t i = 0; i < ref.size(); ++i) {
    double d = static_cast<double>(ref[i]) - got[i];
    num += d * d;
    den += static_cast<double>(ref[i]) * ref[i];
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

CutcpGrid cutcp_seq_c(const CutcpProblem& p) {
  CutcpGrid grid(p.grid.cells(), 0.0f);
  cutcp_range_c(p, 0, p.atoms.size(), &grid[0]);
  return grid;
}

CutcpGrid cutcp_triolet(const CutcpProblem& p, core::ParHint hint) {
  return core::float_histogram<float>(
      p.grid.cells(), core::with_hint(cutcp_iter(p.atoms, p.grid), hint));
}

CutcpGrid cutcp_triolet_dist(net::Comm& comm, const CutcpProblem& p) {
  return dist::float_histogram<float>(
      comm, p.grid.cells(),
      [&] { return core::par(cutcp_iter(p.atoms, p.grid)); });
}

CutcpGrid cutcp_eden_seq(const CutcpProblem& p) {
  CutcpGrid grid(p.grid.cells(), 0.0f);
  cutcp_range_eden(p, 0, p.atoms.size(), &grid[0]);
  return grid;
}

CutcpGrid cutcp_eden_farm(net::Comm& comm, const CutcpProblem& p) {
  std::vector<CutcpTask> tasks;
  const int workers = std::max(1, comm.size() - 1);
  if (comm.rank() == 0) {
    const index_t n = p.atoms.size();
    for (int w = 0; w < workers; ++w) {
      index_t lo = n * w / workers, hi = n * (w + 1) / workers;
      tasks.push_back(CutcpTask{p.atoms.slice(lo, hi), p.grid});
    }
  }
  using Out = std::vector<float>;
  auto results = eden::farm<CutcpTask, Out>(comm, tasks, [](const CutcpTask& t) {
    std::vector<float> grid(static_cast<std::size_t>(t.grid.cells()), 0.0f);
    CutcpProblem local{t.atoms, t.grid};
    cutcp_range_eden(local, t.atoms.lo(), t.atoms.hi(), grid.data());
    return grid;
  });
  if (comm.rank() != 0) return {};
  CutcpGrid grid(p.grid.cells(), 0.0f);
  for (const auto& part : results) {
    for (index_t i = 0; i < grid.size(); ++i) {
      grid[i] += part[static_cast<std::size_t>(i)];
    }
  }
  return grid;
}

CutcpGrid cutcp_lowlevel(const CutcpProblem& p) {
  auto& pool = runtime::current_pool();
  runtime::PerThread<std::vector<float>> priv(
      pool, std::vector<float>(static_cast<std::size_t>(p.grid.cells()), 0.0f));
  runtime::parallel_for(pool, 0, p.atoms.size(), [&](index_t lo, index_t hi) {
    cutcp_range_c(p, lo, hi, priv.local().data());
  });
  CutcpGrid grid(p.grid.cells(), 0.0f);
  for (const auto& part : priv.slots()) {
    for (index_t i = 0; i < grid.size(); ++i) {
      grid[i] += part[static_cast<std::size_t>(i)];
    }
  }
  return grid;
}

CutcpGrid cutcp_lowlevel_dist(net::Comm& comm, const CutcpProblem& p) {
  constexpr int kTagAtoms = 500, kTagGrid = 501, kTagSpec = 502;
  const int size = comm.size();
  const int rank = comm.rank();

  Array1<Atom> my_atoms;
  GridSpec spec;
  if (rank == 0) {
    const index_t n = p.atoms.size();
    for (int r = 1; r < size; ++r) {
      comm.send(r, kTagSpec, p.grid);
      comm.send(r, kTagAtoms, p.atoms.slice(n * r / size, n * (r + 1) / size));
    }
    my_atoms = p.atoms.slice(0, n / size);
    spec = p.grid;
  } else {
    spec = comm.recv<GridSpec>(0, kTagSpec);
    my_atoms = comm.recv<Array1<Atom>>(0, kTagAtoms);
  }

  CutcpProblem local{my_atoms, spec};
  auto& pool = runtime::current_pool();
  runtime::PerThread<std::vector<float>> priv(
      pool, std::vector<float>(static_cast<std::size_t>(spec.cells()), 0.0f));
  runtime::parallel_for(pool, my_atoms.lo(), my_atoms.hi(),
                        [&](index_t lo, index_t hi) {
                          cutcp_range_c(local, lo, hi, priv.local().data());
                        });
  std::vector<float> part(static_cast<std::size_t>(spec.cells()), 0.0f);
  for (const auto& s : priv.slots()) {
    for (std::size_t i = 0; i < part.size(); ++i) part[i] += s[i];
  }

  if (rank != 0) {
    comm.send(0, kTagGrid, part);
    return {};
  }
  CutcpGrid grid(spec.cells(), 0.0f);
  for (index_t i = 0; i < grid.size(); ++i) {
    grid[i] = part[static_cast<std::size_t>(i)];
  }
  for (int r = 1; r < size; ++r) {
    auto other = comm.recv<std::vector<float>>(r, kTagGrid);
    for (index_t i = 0; i < grid.size(); ++i) {
      grid[i] += other[static_cast<std::size_t>(i)];
    }
  }
  return grid;
}

CutcpMeasured measure_cutcp(const CutcpProblem& p, index_t units) {
  CutcpMeasured m;
  const index_t n = p.atoms.size();
  auto at = [n, units](index_t u) { return n * u / units; };
  const auto grid_bytes = static_cast<std::int64_t>(p.grid.cells()) * 4 + 32;

  m.seq_c = measure_seconds([&] { (void)cutcp_seq_c(p); });
  m.seq_triolet =
      measure_seconds([&] { (void)cutcp_triolet(p, core::ParHint::kSeq); });
  m.seq_eden = measure_seconds([&] { (void)cutcp_eden_seq(p); }, 2);

  // Root-side grid merge cost, measured for real.
  std::vector<float> ga(static_cast<std::size_t>(p.grid.cells()), 1.0f);
  std::vector<float> gb(static_cast<std::size_t>(p.grid.cells()), 2.0f);
  const double grid_add_seconds = measure_seconds([&] {
    for (std::size_t i = 0; i < ga.size(); ++i) ga[i] += gb[i];
  });

  // ---- Triolet.
  {
    auto it = cutcp_iter(p.atoms, p.grid);
    std::vector<float> grid(static_cast<std::size_t>(p.grid.cells()), 0.0f);
    m.triolet.name = "Triolet";
    m.triolet.glyph = 'T';
    m.triolet.unit_seconds = measure_units(units, [&](index_t u) {
      core::visit_ordinals(it, at(u), at(u + 1),
                           [&](const std::pair<index_t, float>& cw) {
                             grid[static_cast<std::size_t>(cw.first)] +=
                                 cw.second;
                           });
    });
    m.triolet.input_bytes = [it, at](index_t ulo, index_t uhi) {
      return static_cast<std::int64_t>(
          serial::wire_size(it.slice(core::Seq{at(ulo), at(uhi)})));
    };
    m.triolet.net.alloc_multiplier = 3.0;
    m.triolet.net.alloc_threshold_bytes = 128 * 1024;  // the 60% allocation overhead
  }

  // ---- C+MPI+OpenMP.
  {
    std::vector<float> grid(static_cast<std::size_t>(p.grid.cells()), 0.0f);
    m.lowlevel.name = "C+MPI+OpenMP";
    m.lowlevel.glyph = 'C';
    m.lowlevel.unit_seconds = measure_units(units, [&](index_t u) {
      cutcp_range_c(p, at(u), at(u + 1), grid.data());
    });
    m.lowlevel.input_bytes = [at](index_t ulo, index_t uhi) {
      return (at(uhi) - at(ulo)) * 16 + 96;  // atom slice + grid spec
    };
    // MPI sends directly from preallocated buffers; no serializer packing.
    m.lowlevel.net.copy_cost_per_byte = 0.1e-9;
    m.lowlevel.static_sched = true;
  }

  // ---- Eden.
  {
    std::vector<float> grid(static_cast<std::size_t>(p.grid.cells()), 0.0f);
    m.eden.name = "Eden";
    m.eden.glyph = 'E';
    m.eden.unit_seconds = measure_units(units, [&](index_t u) {
      cutcp_range_eden(p, at(u), at(u + 1), grid.data());
    });
    m.eden.input_bytes = [at](index_t ulo, index_t uhi) {
      return (at(uhi) - at(ulo)) * 16 + 256;
    };
    m.eden.flat = true;
    m.eden.static_sched = true;
    m.eden.straggler = {0.02, 3.0, 0xEDE14};
    m.eden.net.copy_cost_per_byte *= 3.0;
    m.eden.net.fixed_overhead *= 4.0;
  }

  // Every part returns a whole grid; merging is a measured vector add.
  auto result_bytes = [grid_bytes](index_t, index_t) { return grid_bytes; };
  auto combine = [grid_add_seconds](index_t, index_t) {
    return grid_add_seconds;
  };
  for (MeasuredSystem* s : {&m.triolet, &m.lowlevel, &m.eden}) {
    s->result_bytes = result_bytes;
    s->combine_seconds = combine;
  }
  return m;
}

}  // namespace triolet::apps
