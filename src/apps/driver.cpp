#include "apps/driver.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/macros.hpp"
#include "support/timing.hpp"

namespace triolet::apps {

namespace {

/// Contiguous unit ranges [lo, hi) for k blocks over U units.
std::pair<index_t, index_t> block_range(index_t units, int k, int i) {
  return {units * i / k, units * (i + 1) / k};
}

std::vector<double> slice_units(const std::vector<double>& ts, index_t lo,
                                index_t hi) {
  return {ts.begin() + static_cast<std::ptrdiff_t>(lo),
          ts.begin() + static_cast<std::ptrdiff_t>(hi)};
}

ScalePoint simulate_two_level(const MeasuredSystem& ms, int nodes, int cores) {
  const index_t units = static_cast<index_t>(ms.unit_seconds.size());
  sim::SimTrace trace(std::max(nodes, 1));

  const double prep =
      ms.prep_parallelizable ? ms.root_prep_seconds / cores : ms.root_prep_seconds;
  trace.compute(0, prep);

  std::vector<double> node_makespans(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) {
    auto [lo, hi] = block_range(units, nodes, r);
    auto ts = slice_units(ms.unit_seconds, lo, hi);
    node_makespans[static_cast<std::size_t>(r)] =
        ms.cyclic_sched ? sim::makespan_static_cyclic(ts, cores)
        : ms.static_sched ? sim::makespan_static_block(ts, cores)
                          : sim::makespan_dynamic(ts, cores);
    if (r != 0) {
      trace.send(0, r, ms.input_bytes_by_part
                           ? ms.input_bytes_by_part(r, nodes)
                           : ms.input_bytes(lo, hi));
    }
  }
  trace.compute(0, node_makespans[0]);
  for (int r = 1; r < nodes; ++r) {
    auto [lo, hi] = block_range(units, nodes, r);
    trace.recv(0, r);
    trace.compute(0, ms.combine_seconds ? ms.combine_seconds(lo, hi) : 0.0);
  }
  for (int r = 1; r < nodes; ++r) {
    auto [lo, hi] = block_range(units, nodes, r);
    trace.recv(r, 0);
    trace.compute(r, node_makespans[static_cast<std::size_t>(r)]);
    trace.send(r, 0, ms.result_bytes ? ms.result_bytes(lo, hi) : 0);
  }

  auto res = sim::simulate(trace, ms.net);
  return ScalePoint{nodes * cores, res.makespan};
}

ScalePoint simulate_flat_farm(const MeasuredSystem& ms, int total_cores) {
  const index_t units = static_cast<index_t>(ms.unit_seconds.size());
  if (total_cores <= 1) {
    double t = ms.root_prep_seconds;
    for (double u : ms.unit_seconds) t += u;
    return ScalePoint{1, t};
  }
  const int w = total_cores - 1;  // master coordinates, workers compute

  // Eden's runtime buffers every in-flight message; a fixed pool overflows
  // when the aggregate task data exceeds it (paper §4.3).
  auto worker_input = [&](int i) {
    if (ms.input_bytes_by_part) return ms.input_bytes_by_part(i, w);
    auto [lo, hi] = block_range(units, w, i);
    return ms.input_bytes(lo, hi);
  };

  if (ms.buffer_capacity > 0) {
    std::int64_t in_flight = 0;
    for (int i = 0; i < w; ++i) in_flight += worker_input(i);
    if (in_flight > ms.buffer_capacity) {
      return ScalePoint{total_cores, std::nan("")};
    }
  }

  sim::SimTrace trace(w + 1);
  trace.compute(0, ms.root_prep_seconds);  // no shared memory: serial prep
  for (int i = 0; i < w; ++i) {
    trace.send(0, i + 1, worker_input(i));
  }
  for (int i = 0; i < w; ++i) {
    auto ts = ms.straggler.apply(
        slice_units(ms.unit_seconds, block_range(units, w, i).first,
                    block_range(units, w, i).second),
        static_cast<std::uint64_t>(total_cores) * 1000 +
            static_cast<std::uint64_t>(i));
    double t = sim::total_work(ts);
    trace.recv(i + 1, 0);
    trace.compute(i + 1, t);
    auto [lo, hi] = block_range(units, w, i);
    trace.send(i + 1, 0, ms.result_bytes ? ms.result_bytes(lo, hi) : 0);
  }
  for (int i = 0; i < w; ++i) {
    auto [lo, hi] = block_range(units, w, i);
    trace.recv(0, i + 1);
    trace.compute(0, ms.combine_seconds ? ms.combine_seconds(lo, hi) : 0.0);
  }

  auto res = sim::simulate(trace, ms.net);
  return ScalePoint{total_cores, res.makespan};
}

}  // namespace

ScalePoint simulate_point(const MeasuredSystem& ms, int nodes,
                          int cores_per_node) {
  TRIOLET_CHECK(nodes >= 1 && cores_per_node >= 1, "bad machine shape");
  if (ms.flat) {
    return simulate_flat_farm(ms, nodes * cores_per_node);
  }
  return simulate_two_level(ms, nodes, cores_per_node);
}

std::vector<std::pair<int, int>> standard_machine_points(int max_nodes,
                                                         int cores_per_node) {
  std::vector<std::pair<int, int>> pts;
  for (int c = 1; c <= cores_per_node; c *= 2) {
    pts.push_back({1, c});
  }
  if (pts.empty() || pts.back().second != cores_per_node) {
    pts.push_back({1, cores_per_node});
  }
  for (int n = 2; n <= max_nodes; n += 2) {
    pts.push_back({n, cores_per_node});
  }
  return pts;
}

ScalingSeries run_series(const MeasuredSystem& ms, int max_nodes,
                         int cores_per_node) {
  ScalingSeries out;
  out.name = ms.name;
  out.glyph = ms.glyph;
  for (auto [n, c] : standard_machine_points(max_nodes, cores_per_node)) {
    out.points.push_back(simulate_point(ms, n, c));
  }
  return out;
}

namespace {

/// When TRIOLET_CSV_DIR is set, figures also land as CSV for plotting.
void maybe_write_csv(const std::string& title, double seq_c_seconds,
                     const std::vector<ScalingSeries>& series) {
  const char* dir = std::getenv("TRIOLET_CSV_DIR");
  if (dir == nullptr || series.empty()) return;
  std::string fname;
  for (char c : title) {
    fname.push_back(std::isalnum(static_cast<unsigned char>(c))
                        ? static_cast<char>(std::tolower(c))
                        : '_');
  }
  std::ofstream out(std::string(dir) + "/" + fname + ".csv");
  out << "cores";
  for (const auto& s : series) {
    out << "," << s.name << "_seconds," << s.name << "_speedup";
  }
  out << "\n";
  for (std::size_t p = 0; p < series[0].points.size(); ++p) {
    out << series[0].points[p].cores;
    for (const auto& s : series) {
      const auto& pt = s.points[p];
      if (pt.failed()) {
        out << ",,";
      } else {
        out << "," << pt.seconds << "," << seq_c_seconds / pt.seconds;
      }
    }
    out << "\n";
  }
}

}  // namespace

void print_figure(const std::string& title, double seq_c_seconds,
                  const std::vector<ScalingSeries>& series) {
  maybe_write_csv(title, seq_c_seconds, series);
  std::vector<std::string> header{"cores"};
  for (const auto& s : series) {
    header.push_back(s.name + " time(s)");
    header.push_back(s.name + " speedup");
  }
  Table table(header);
  TRIOLET_CHECK(!series.empty(), "figure needs at least one series");
  for (std::size_t p = 0; p < series[0].points.size(); ++p) {
    std::vector<std::string> row{
        Table::num(static_cast<std::int64_t>(series[0].points[p].cores))};
    for (const auto& s : series) {
      const auto& pt = s.points[p];
      if (pt.failed()) {
        row.push_back("FAIL");
        row.push_back("-");
      } else {
        row.push_back(Table::num(pt.seconds, 5));
        row.push_back(Table::num(seq_c_seconds / pt.seconds, 2));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(title);

  AsciiChart chart(72, 20);
  {
    // Linear-speedup reference line, as in every figure of the paper.
    ChartSeries lin{"linear", '.', {}, {}};
    for (const auto& pt : series[0].points) {
      lin.xs.push_back(pt.cores);
      lin.ys.push_back(pt.cores);
    }
    chart.add(std::move(lin));
  }
  for (const auto& s : series) {
    ChartSeries cs{s.name, s.glyph, {}, {}};
    for (const auto& pt : s.points) {
      cs.xs.push_back(pt.cores);
      cs.ys.push_back(pt.failed() ? std::nan("") : seq_c_seconds / pt.seconds);
    }
    chart.add(std::move(cs));
  }
  chart.print(title + " (speedup over sequential C vs cores)");
}

void shape_check(const std::string& description, bool holds) {
  std::printf("  [%s] %s\n", holds ? "PASS" : "DEVIATION", description.c_str());
  std::fflush(stdout);
}

double final_speedup(const ScalingSeries& s, double seq_c_seconds) {
  TRIOLET_CHECK(!s.points.empty(), "empty series");
  const auto& pt = s.points.back();
  return pt.failed() ? std::nan("") : seq_c_seconds / pt.seconds;
}

double seq_equivalent_seconds(const MeasuredSystem& ms) {
  double t = ms.root_prep_seconds;
  for (double u : ms.unit_seconds) t += u;
  return t;
}

double measure_seconds(const std::function<void()>& fn, int repeats) {
  // Minimum over repeats: on a single-core host, any other sample includes
  // preemption noise; the minimum is the cleanest estimate of the code cost.
  return time_fn(fn, repeats, 1).min;
}

std::vector<double> measure_units(
    index_t units, const std::function<void(index_t)>& run_unit, int passes) {
  TRIOLET_CHECK(passes >= 1, "need at least one measurement pass");
  std::vector<double> out(static_cast<std::size_t>(units), 1e300);
  for (int pass = 0; pass < passes; ++pass) {
    for (index_t u = 0; u < units; ++u) {
      Stopwatch sw;
      run_unit(u);
      auto& best = out[static_cast<std::size_t>(u)];
      best = std::min(best, sw.seconds());
    }
  }
  return out;
}

}  // namespace triolet::apps
