#include "apps/sgemm.hpp"

#include <cmath>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "eden/chunked.hpp"
#include "eden/farm.hpp"
#include "runtime/parallel.hpp"
#include "support/rng.hpp"

namespace triolet::apps {

namespace {

inline float dot_rows(std::span<const float> u, std::span<const float> v) {
  float acc = 0.0f;
  for (std::size_t i = 0; i < u.size(); ++i) acc += u[i] * v[i];
  return acc;
}

/// The paper §2 two-line program:
///   zipped_AB = outerproduct(rows(A), rows(BT))
///   AB = [alpha * dot(u, v) for (u, v) in zipped_AB]
auto sgemm_iter(const Array2<float>& a, const Array2<float>& bt, float alpha) {
  auto zipped = core::outerproduct(core::rows(a), core::rows(bt));
  return core::map(zipped, [alpha](const auto& uv) {
    return alpha * dot_rows(uv.first, uv.second);
  });
}

/// Transposition expressed as a Triolet comprehension (paper §3.3):
/// [B[x, y] for (y, x) in arrayRange(m, k)], parallelized over shared
/// memory with localpar — "transposition does too little work to
/// parallelize profitably on distributed memory" (§4.3).
Array2<float> transpose_triolet(const Array2<float>& b, core::ParHint hint) {
  auto it = core::map_with(core::indices(core::Dim2{0, b.cols(), 0, b.rows()}),
                           b, [](const Array2<float>& src, core::Index2 i) {
                             return src(i.x, i.y);
                           });
  return core::build_array2(core::with_hint(it, hint));
}

/// Eden farm task: a block of A rows plus the whole transposed B —
/// per-worker replication of B is what blows Eden's message buffers.
struct SgemmTask {
  Array2<float> a_rows;
  Array2<float> bt;
  float alpha = 1.0f;
};
TRIOLET_SERIALIZE_FIELDS(SgemmTask, a_rows, bt, alpha)

}  // namespace

SgemmProblem make_sgemm(index_t n, index_t k, index_t m, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  SgemmProblem p;
  p.a = Array2<float>(n, k);
  p.b = Array2<float>(k, m);
  p.alpha = 0.5f;
  for (index_t y = 0; y < n; ++y)
    for (index_t x = 0; x < k; ++x)
      p.a(y, x) = static_cast<float>(rng.uniform(-1.0, 1.0));
  for (index_t y = 0; y < k; ++y)
    for (index_t x = 0; x < m; ++x)
      p.b(y, x) = static_cast<float>(rng.uniform(-1.0, 1.0));
  return p;
}

double sgemm_fingerprint(const Array2<float>& c) {
  double acc = 0;
  for (index_t y = 0; y < c.rows(); ++y) {
    for (index_t x = 0; x < c.cols(); ++x) {
      acc += static_cast<double>(c(y, x)) * (1 + ((y * 31 + x) % 7));
    }
  }
  return acc;
}

double sgemm_rel_error(const Array2<float>& ref, const Array2<float>& got) {
  TRIOLET_CHECK(ref.rows() == got.rows() && ref.cols() == got.cols(),
                "result shape mismatch");
  double num = 0, den = 0;
  for (index_t y = 0; y < ref.rows(); ++y) {
    for (index_t x = 0; x < ref.cols(); ++x) {
      double d = ref(y, x) - got(y, x);
      num += d * d;
      den += static_cast<double>(ref(y, x)) * ref(y, x);
    }
  }
  return den > 0 ? std::sqrt(num / den) : std::sqrt(num);
}

Array2<float> sgemm_seq_c(const SgemmProblem& p) {
  Array2<float> bt = transpose(p.b);
  Array2<float> c(p.n(), p.m());
  for (index_t y = 0; y < p.n(); ++y) {
    for (index_t x = 0; x < p.m(); ++x) {
      c(y, x) = p.alpha * dot_rows(p.a.row(y), bt.row(x));
    }
  }
  return c;
}

Array2<float> sgemm_triolet(const SgemmProblem& p, core::ParHint hint) {
  // Transpose locally (shared memory), multiply under the requested hint.
  core::ParHint tr_hint =
      hint == core::ParHint::kSeq ? core::ParHint::kSeq : core::ParHint::kLocal;
  Array2<float> bt = transpose_triolet(p.b, tr_hint);
  return core::build_array2(
      core::with_hint(sgemm_iter(p.a, bt, p.alpha), hint));
}

Array2<float> sgemm_triolet_dist(net::Comm& comm, const SgemmProblem& p) {
  // Root transposes over shared memory, then the 2D block-distributed
  // multiply ships only the rows each block needs.
  Array2<float> bt;
  if (comm.rank() == 0) bt = transpose_triolet(p.b, core::ParHint::kLocal);
  auto c = dist::build_array2(
      comm, [&] { return core::par(sgemm_iter(p.a, bt, p.alpha)); });
  if (comm.rank() != 0) return {};
  return c;
}

Array2<float> sgemm_eden_seq(const SgemmProblem& p) {
  // Chunked row storage: every row access walks the chunk table, the
  // per-element cost of Eden's high-level array style.
  Array2<float> bt = transpose(p.b);
  std::vector<eden::ChunkedArray<float>> a_rows, bt_rows;
  a_rows.reserve(static_cast<std::size_t>(p.n()));
  for (index_t y = 0; y < p.n(); ++y) {
    auto r = p.a.row(y);
    a_rows.push_back(eden::ChunkedArray<float>::from_vector(
        {r.begin(), r.end()}, 16));
  }
  bt_rows.reserve(static_cast<std::size_t>(p.m()));
  for (index_t x = 0; x < p.m(); ++x) {
    auto r = bt.row(x);
    bt_rows.push_back(eden::ChunkedArray<float>::from_vector(
        {r.begin(), r.end()}, 16));
  }
  Array2<float> c(p.n(), p.m());
  for (index_t y = 0; y < p.n(); ++y) {
    for (index_t x = 0; x < p.m(); ++x) {
      const auto& u = a_rows[static_cast<std::size_t>(y)];
      const auto& v = bt_rows[static_cast<std::size_t>(x)];
      float acc = 0.0f;
      for (std::size_t ch = 0; ch < u.chunk_count(); ++ch) {
        const auto& uc = u.chunk(ch);
        const auto& vc = v.chunk(ch);
        for (std::size_t i = 0; i < uc.size(); ++i) acc += uc[i] * vc[i];
      }
      c(y, x) = p.alpha * acc;
    }
  }
  return c;
}

Array2<float> sgemm_eden_farm(net::Comm& comm, const SgemmProblem& p) {
  std::vector<SgemmTask> tasks;
  const int workers = std::max(1, comm.size() - 1);
  if (comm.rank() == 0) {
    Array2<float> bt = transpose(p.b);
    for (int w = 0; w < workers; ++w) {
      index_t lo = p.n() * w / workers, hi = p.n() * (w + 1) / workers;
      tasks.push_back(SgemmTask{p.a.slice_rows(lo, hi), bt, p.alpha});
    }
  }
  using Out = Array2<float>;
  auto results =
      eden::farm<SgemmTask, Out>(comm, tasks, [](const SgemmTask& t) {
        Array2<float> c(t.a_rows.row_lo(), t.a_rows.rows(), t.bt.rows(),
                        std::vector<float>(static_cast<std::size_t>(
                            t.a_rows.rows() * t.bt.rows())));
        for (index_t y = t.a_rows.row_lo(); y < t.a_rows.row_hi(); ++y) {
          for (index_t x = 0; x < t.bt.rows(); ++x) {
            c(y, x) = t.alpha * dot_rows(t.a_rows.row(y), t.bt.row(x));
          }
        }
        return c;
      });
  if (comm.rank() != 0) return {};
  Array2<float> c(p.n(), p.m());
  for (const auto& block : results) {
    for (index_t y = block.row_lo(); y < block.row_hi(); ++y) {
      for (index_t x = 0; x < p.m(); ++x) c(y, x) = block(y, x);
    }
  }
  return c;
}

Array2<float> sgemm_lowlevel(const SgemmProblem& p) {
  auto& pool = runtime::current_pool();
  Array2<float> bt(p.m(), p.k());
  runtime::parallel_for(pool, 0, p.k(), [&](index_t lo, index_t hi) {
    for (index_t y = lo; y < hi; ++y) {
      for (index_t x = 0; x < p.m(); ++x) bt(x, y) = p.b(y, x);
    }
  });
  Array2<float> c(p.n(), p.m());
  runtime::parallel_for(pool, 0, p.n(), [&](index_t lo, index_t hi) {
    for (index_t y = lo; y < hi; ++y) {
      for (index_t x = 0; x < p.m(); ++x) {
        c(y, x) = p.alpha * dot_rows(p.a.row(y), bt.row(x));
      }
    }
  });
  return c;
}

Array2<float> sgemm_lowlevel_dist(net::Comm& comm, const SgemmProblem& p) {
  // Explicit 2D block decomposition with point-to-point messaging: the
  // "over 120 lines of code" the paper charges to this style.
  constexpr int kTagA = 300, kTagBT = 301, kTagC = 302, kTagDom = 303;
  const int size = comm.size();
  const int rank = comm.rank();
  auto& pool = runtime::current_pool();

  core::Dim2 my_block{};
  Array2<float> my_a, my_bt;
  if (rank == 0) {
    Array2<float> bt(p.m(), p.k());
    runtime::parallel_for(pool, 0, p.k(), [&](index_t lo, index_t hi) {
      for (index_t y = lo; y < hi; ++y) {
        for (index_t x = 0; x < p.m(); ++x) bt(x, y) = p.b(y, x);
      }
    });
    auto blocks = core::split_blocks(core::Dim2{0, p.n(), 0, p.m()}, size);
    for (int r = 1; r < size; ++r) {
      const auto& blk = blocks[static_cast<std::size_t>(r)];
      comm.send(r, kTagDom, blk);
      comm.send(r, kTagA, p.a.slice_rows(blk.y0, blk.y1));
      comm.send(r, kTagBT, bt.slice_rows(blk.x0, blk.x1));
    }
    my_block = blocks[0];
    my_a = p.a.slice_rows(my_block.y0, my_block.y1);
    my_bt = bt.slice_rows(my_block.x0, my_block.x1);
  } else {
    my_block = comm.recv<core::Dim2>(0, kTagDom);
    my_a = comm.recv<Array2<float>>(0, kTagA);
    my_bt = comm.recv<Array2<float>>(0, kTagBT);
  }

  // Compute the local block with threads (the OpenMP part).
  core::Block2<float> block{my_block, std::vector<float>(static_cast<std::size_t>(
                                          my_block.size()))};
  runtime::parallel_for(
      pool, my_block.y0, my_block.y1, [&](index_t lo, index_t hi) {
        for (index_t y = lo; y < hi; ++y) {
          for (index_t x = my_block.x0; x < my_block.x1; ++x) {
            block.data[static_cast<std::size_t>(
                my_block.ordinal(core::Index2{y, x}))] =
                p.alpha * dot_rows(my_a.row(y), my_bt.row(x));
          }
        }
      });

  if (rank != 0) {
    comm.send(0, kTagC, block);
    return {};
  }
  Array2<float> c(p.n(), p.m());
  auto paste = [&](const core::Block2<float>& blk) {
    blk.dom.for_each([&](core::Index2 i) { c(i.y, i.x) = blk.at(i); });
  };
  paste(block);
  for (int r = 1; r < size; ++r) {
    paste(comm.recv<core::Block2<float>>(r, kTagC));
  }
  return c;
}

SgemmMeasured measure_sgemm(const SgemmProblem& p, index_t units) {
  SgemmMeasured m;
  const index_t n = p.n();
  auto row = [n, units](index_t u) { return n * u / units; };
  const auto a_bytes = static_cast<std::int64_t>(p.n() * p.k()) * 4;
  const auto bt_bytes = static_cast<std::int64_t>(p.m() * p.k()) * 4;

  m.seq_c = measure_seconds([&] { (void)sgemm_seq_c(p); });
  m.seq_triolet =
      measure_seconds([&] { (void)sgemm_triolet(p, core::ParHint::kSeq); });
  m.seq_eden = measure_seconds([&] { (void)sgemm_eden_seq(p); }, 2);

  Array2<float> bt = transpose(p.b);
  const double transpose_seconds =
      measure_seconds([&] { (void)transpose(p.b); });

  /// Bytes for part i of a k-part 2D block decomposition: the A rows and
  /// BT rows meeting at block i (identical for Triolet's sliced
  /// outerproduct and the low-level sends).
  auto block_input = [&p](int part, int parts) {
    auto blocks = core::split_blocks(core::Dim2{0, p.n(), 0, p.m()}, parts);
    const auto& b = blocks[static_cast<std::size_t>(part)];
    return static_cast<std::int64_t>((b.rows() * p.k() + b.cols() * p.k()) * 4 +
                                     128);
  };

  // ---- Triolet.
  {
    auto it = sgemm_iter(p.a, bt, p.alpha);
    std::vector<float> scratch(static_cast<std::size_t>(p.n() * p.m()));
    m.triolet.name = "Triolet";
    m.triolet.glyph = 'T';
    m.triolet.unit_seconds = measure_units(units, [&](index_t u) {
      for (index_t y = row(u); y < row(u + 1); ++y) {
        for (index_t x = 0; x < p.m(); ++x) {
          scratch[static_cast<std::size_t>(y * p.m() + x)] =
              it.at(core::Index2{y, x});
        }
      }
    });
    m.triolet.input_bytes_by_part = block_input;
    m.triolet.root_prep_seconds = transpose_seconds;
    m.triolet.prep_parallelizable = true;  // localpar transpose
    m.triolet.net.alloc_multiplier = 3.0;
    m.triolet.net.alloc_threshold_bytes = 128 * 1024;
  }

  // ---- C+MPI+OpenMP.
  {
    std::vector<float> scratch(static_cast<std::size_t>(p.n() * p.m()));
    m.lowlevel.name = "C+MPI+OpenMP";
    m.lowlevel.glyph = 'C';
    m.lowlevel.unit_seconds = measure_units(units, [&](index_t u) {
      for (index_t y = row(u); y < row(u + 1); ++y) {
        for (index_t x = 0; x < p.m(); ++x) {
          scratch[static_cast<std::size_t>(y * p.m() + x)] =
              p.alpha * dot_rows(p.a.row(y), bt.row(x));
        }
      }
    });
    m.lowlevel.input_bytes_by_part = block_input;
    m.lowlevel.root_prep_seconds = transpose_seconds;
    m.lowlevel.prep_parallelizable = true;  // omp-parallel transpose
    // MPI sends directly from preallocated buffers; no serializer packing.
    m.lowlevel.net.copy_cost_per_byte = 0.1e-9;
    m.lowlevel.static_sched = true;
  }

  // ---- Eden: chunked rows, sequential transpose, whole-BT replication.
  {
    std::vector<eden::ChunkedArray<float>> bt_rows;
    for (index_t x = 0; x < p.m(); ++x) {
      auto r = bt.row(x);
      bt_rows.push_back(
          eden::ChunkedArray<float>::from_vector({r.begin(), r.end()}, 16));
    }
    std::vector<float> scratch(static_cast<std::size_t>(p.n() * p.m()));
    m.eden.name = "Eden";
    m.eden.glyph = 'E';
    m.eden.unit_seconds = measure_units(units, [&](index_t u) {
      for (index_t y = row(u); y < row(u + 1); ++y) {
        auto arow = eden::ChunkedArray<float>::from_vector(
            {p.a.row(y).begin(), p.a.row(y).end()}, 16);
        for (index_t x = 0; x < p.m(); ++x) {
          const auto& v = bt_rows[static_cast<std::size_t>(x)];
          float acc = 0.0f;
          for (std::size_t ch = 0; ch < arow.chunk_count(); ++ch) {
            const auto& uc = arow.chunk(ch);
            const auto& vc = v.chunk(ch);
            for (std::size_t i = 0; i < uc.size(); ++i) acc += uc[i] * vc[i];
          }
          scratch[static_cast<std::size_t>(y * p.m() + x)] = p.alpha * acc;
        }
      }
    });
    m.eden.input_bytes = [row, bt_bytes, &p](index_t ulo, index_t uhi) {
      // A-row slice plus a full copy of BT per worker.
      return (row(uhi) - row(ulo)) * p.k() * 4 + bt_bytes + 128;
    };
    m.eden.root_prep_seconds = transpose_seconds;  // sequential at master
    m.eden.flat = true;
    m.eden.static_sched = true;
    m.eden.straggler = {0.02, 3.0, 0xEDE12};
    // A fixed runtime buffer pool: comfortably holds one node's worth of
    // in-flight task data (A + 15 copies of BT) but not two nodes' worth.
    m.eden.buffer_capacity = a_bytes + 24 * bt_bytes;
    m.eden.net.copy_cost_per_byte *= 3.0;
    m.eden.net.fixed_overhead *= 4.0;
  }

  // Result: each part returns its output block (cells are evenly split).
  auto result_bytes = [&p, row](index_t ulo, index_t uhi) {
    return (row(uhi) - row(ulo)) * p.m() * 4 + 64;
  };
  auto combine = [&p, row](index_t ulo, index_t uhi) {
    return static_cast<double>((row(uhi) - row(ulo)) * p.m()) * 4 * 0.1e-9;
  };
  for (MeasuredSystem* s : {&m.triolet, &m.lowlevel, &m.eden}) {
    s->result_bytes = result_bytes;
    s->combine_seconds = combine;
  }
  return m;
}

}  // namespace triolet::apps
