#pragma once

// Flat process farm: Eden's work-distribution model.
//
// Eden "presents a flat view of parallelism where all cores are equally
// remote from one another" (§2): processes never share memory — even two
// processes on the same node exchange serialized messages — and the baseline
// skeleton library has "the main process directly communicat[ing] with all
// other processes" (§4.1). This farm reproduces both properties on the
// net:: substrate: the master (rank 0) sends every worker its whole task
// input as one message and collects every result itself.
//
// Task payloads cross the wire even though ranks share an address space, so
// the farm exhibits Eden's real communication volume, including the bounded
// message buffer failure mode (configure via ClusterOptions).

#include <functional>
#include <vector>

#include "net/comm.hpp"
#include "support/macros.hpp"

namespace triolet::eden {

inline constexpr int kTagFarmTask = 200;
inline constexpr int kTagFarmResult = 201;
inline constexpr int kTagFarmDone = 202;

/// SPMD farm body. The master holds `tasks` (ignored on workers), sends task
/// i to worker (i mod (size-1)) + 1, and returns results in task order (on
/// the master; workers return an empty vector). `worker` maps In -> Out.
/// With a single rank the master computes everything itself.
template <typename In, typename Out, typename Worker>
std::vector<Out> farm(net::Comm& comm, const std::vector<In>& tasks,
                      Worker&& worker) {
  const int p = comm.size();
  if (p == 1) {
    std::vector<Out> out;
    out.reserve(tasks.size());
    for (const In& t : tasks) out.push_back(worker(t));
    return out;
  }

  const int workers = p - 1;
  if (comm.rank() == 0) {
    // Master: one message per task, round-robin; no slicing intelligence.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      int w = static_cast<int>(i % static_cast<std::size_t>(workers)) + 1;
      comm.send(w, kTagFarmTask, tasks[i]);
    }
    for (int w = 1; w <= workers; ++w) {
      comm.send_bytes(w, kTagFarmDone, {});  // end-of-stream
    }
    std::vector<Out> results(tasks.size());
    // Collect in task order; the master is the single collection point.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      int w = static_cast<int>(i % static_cast<std::size_t>(workers)) + 1;
      results[i] = comm.recv<Out>(w, kTagFarmResult);
    }
    return results;
  }

  // Worker: process the task stream until the end-of-stream tag. Matching
  // with a wildcard tag takes the earliest queued message, and the master
  // sends the terminator after every task, so tasks always drain first.
  for (;;) {
    auto msg = comm.recv_message(0, net::kAnyTag);
    if (msg.tag == kTagFarmDone) break;
    TRIOLET_ASSERT(msg.tag == kTagFarmTask);
    In task = serial::from_bytes<In>(msg.payload);
    comm.send(0, kTagFarmResult, worker(task));
  }
  return {};
}

}  // namespace triolet::eden
