#include "eden/slowmath.hpp"

#include <cmath>

#include "support/macros.hpp"

namespace triolet::eden {

// The generic double-precision libm path with conversions on both sides and
// an out-of-line call: what a backend emits when it cannot select the
// float-specialized entry point (GHC's miss on sinf/cosf, paper §4.2).

TRIOLET_NOINLINE float eden_sinf(float x) {
  return static_cast<float>(std::sin(static_cast<double>(x)));
}

TRIOLET_NOINLINE float eden_cosf(float x) {
  return static_cast<float>(std::cos(static_cast<double>(x)));
}

TRIOLET_NOINLINE double eden_acos(double x) {
  // acos through an extra out-of-line indirection (no specialization).
  return std::acos(x);
}

}  // namespace triolet::eden
