#pragma once

// Boxed cons lists: the Eden/Haskell data representation.
//
// The paper attributes the naive Eden port's order-of-magnitude sequential
// slowdown "chiefly [to] the overhead of list manipulation" (§1). This
// emulation reproduces that overhead by the same mechanism rather than by an
// artificial fudge factor: every element is boxed (its own heap allocation)
// and every cons cell is another allocation, traversed by pointer chasing —
// what GHC does for [Float] without unboxing.
//
// Destruction is iterative, so releasing a million-element list does not
// overflow the stack.

#include <memory>
#include <vector>

#include "support/macros.hpp"

namespace triolet::eden {

template <typename T>
class List {
 public:
  List() = default;  // nil

  static List nil() { return List(); }

  static List cons(T head, List tail) {
    auto node = std::make_shared<Node>();
    node->head = std::make_shared<T>(std::move(head));  // boxed element
    node->tail = std::move(tail.head_);
    return List(std::move(node));
  }

  static List from_vector(const std::vector<T>& v) {
    List out;
    for (auto it = v.rbegin(); it != v.rend(); ++it) {
      out = cons(*it, std::move(out));
    }
    return out;
  }

  ~List() { release(); }
  List(const List&) = default;
  List(List&&) noexcept = default;
  List& operator=(const List& o) {
    if (this != &o) {
      release();
      head_ = o.head_;
    }
    return *this;
  }
  List& operator=(List&& o) noexcept {
    if (this != &o) {
      release();
      head_ = std::move(o.head_);
    }
    return *this;
  }

  bool empty() const { return head_ == nullptr; }

  const T& head() const {
    TRIOLET_ASSERT(head_ != nullptr);
    return *head_->head;
  }

  List tail() const {
    TRIOLET_ASSERT(head_ != nullptr);
    return List(head_->tail);
  }

  std::size_t length() const {
    std::size_t n = 0;
    for (const Node* p = head_.get(); p != nullptr; p = p->tail.get()) ++n;
    return n;
  }

  std::vector<T> to_vector() const {
    std::vector<T> out;
    for (const Node* p = head_.get(); p != nullptr; p = p->tail.get()) {
      out.push_back(*p->head);
    }
    return out;
  }

  /// Strict left fold in list order.
  template <typename A, typename F>
  A foldl(F&& f, A acc) const {
    for (const Node* p = head_.get(); p != nullptr; p = p->tail.get()) {
      acc = f(std::move(acc), *p->head);
    }
    return acc;
  }

  /// Applies `f` to every element (building the boxed result list).
  template <typename F>
  auto map(F&& f) const {
    using U = decltype(f(std::declval<const T&>()));
    std::vector<U> tmp;
    for (const Node* p = head_.get(); p != nullptr; p = p->tail.get()) {
      tmp.push_back(f(*p->head));
    }
    return List<U>::from_vector(tmp);
  }

  /// Keeps elements satisfying `pred` (boxed result list).
  template <typename P>
  List filter(P&& pred) const {
    std::vector<T> tmp;
    for (const Node* p = head_.get(); p != nullptr; p = p->tail.get()) {
      if (pred(*p->head)) tmp.push_back(*p->head);
    }
    return from_vector(tmp);
  }

  /// Pairwise combination, stopping at the shorter list.
  template <typename U, typename F>
  auto zip_with(const List<U>& other, F&& f) const {
    using R = decltype(f(std::declval<const T&>(), std::declval<const U&>()));
    std::vector<R> tmp;
    const Node* p = head_.get();
    auto q = other.begin_node();
    while (p != nullptr && q != nullptr) {
      tmp.push_back(f(*p->head, q->boxed()));
      p = p->tail.get();
      q = q->next();
    }
    return List<R>::from_vector(tmp);
  }

  // Minimal node view for cross-type zip_with.
  struct Node {
    std::shared_ptr<T> head;
    std::shared_ptr<Node> tail;
    const T& boxed() const { return *head; }
    const Node* next() const { return tail.get(); }
  };
  const Node* begin_node() const { return head_.get(); }

 private:
  explicit List(std::shared_ptr<Node> head) : head_(std::move(head)) {}

  void release() {
    // Unlink iteratively while we hold the only reference.
    std::shared_ptr<Node> cur = std::move(head_);
    while (cur && cur.use_count() == 1) {
      std::shared_ptr<Node> next = std::move(cur->tail);
      cur = std::move(next);
    }
  }

  std::shared_ptr<Node> head_;
};

/// xs ++ ys (rebuilds the spine of xs; shares ys, as Haskell's ++ does).
template <typename T>
List<T> append(const List<T>& xs, List<T> ys) {
  std::vector<T> front = xs.to_vector();
  List<T> out = std::move(ys);
  for (auto it = front.rbegin(); it != front.rend(); ++it) {
    out = List<T>::cons(*it, std::move(out));
  }
  return out;
}

/// reverse.
template <typename T>
List<T> reverse(const List<T>& xs) {
  List<T> out;
  for (const auto* p = xs.begin_node(); p != nullptr; p = p->next()) {
    out = List<T>::cons(p->boxed(), std::move(out));
  }
  return out;
}

/// take n.
template <typename T>
List<T> take(std::size_t n, const List<T>& xs) {
  std::vector<T> front;
  for (const auto* p = xs.begin_node(); p != nullptr && front.size() < n;
       p = p->next()) {
    front.push_back(p->boxed());
  }
  return List<T>::from_vector(front);
}

/// drop n (shares the remaining spine — O(n), no copying).
template <typename T>
List<T> drop(std::size_t n, List<T> xs) {
  while (n-- > 0 && !xs.empty()) xs = xs.tail();
  return xs;
}

/// concat: flattens a list of lists.
template <typename T>
List<T> concat(const List<List<T>>& xss) {
  std::vector<T> all;
  for (const auto* p = xss.begin_node(); p != nullptr; p = p->next()) {
    for (const auto* q = p->boxed().begin_node(); q != nullptr; q = q->next()) {
      all.push_back(q->boxed());
    }
  }
  return List<T>::from_vector(all);
}

/// replicate n x.
template <typename T>
List<T> replicate(std::size_t n, const T& x) {
  List<T> out;
  for (std::size_t i = 0; i < n; ++i) out = List<T>::cons(x, std::move(out));
  return out;
}

/// Sum of a numeric list (common consumer in the Eden benchmark ports).
template <typename T>
T list_sum(const List<T>& xs) {
  return xs.foldl([](T a, const T& b) { return a + b; }, T{});
}

}  // namespace triolet::eden
