#pragma once

// Trigonometry the way the Eden backend compiles it.
//
// "Eden's backend misses a floating-point optimization on sinf and cosf
// calls, resulting in about 50% longer run time on a single thread" (§4.2,
// mri-q). GHC's missed optimization makes single-precision trig go through
// the generic double-precision libm entry points with conversions on both
// sides and no call-site specialization. These wrappers reproduce exactly
// that: out-of-line calls into the double (and for sincos pairs, extended
// precision) path. The eden:: benchmark variants call these; the Triolet
// and C variants use sinf/cosf directly.

namespace triolet::eden {

float eden_sinf(float x);
float eden_cosf(float x);

/// acos through the same deoptimized path (used by tpacf).
double eden_acos(double x);

}  // namespace triolet::eden
