#pragma once

// Chunked arrays: the paper's optimized Eden data representation.
//
// "In Eden, we build arrays in chunked form, as lists of 1k-element vectors,
// so that the runtime can distribute subarrays to processors while still
// benefiting from efficient array traversal" (§4.2). A ChunkedArray is a
// list of boxed fixed-size vectors: traversal within a chunk is tight, but
// the chunk list itself is a pointer structure, every chunk is a separate
// allocation, and partitioning happens at chunk granularity only.

#include <memory>
#include <vector>

#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet::eden {

inline constexpr std::size_t kChunkSize = 1024;

template <typename T>
class ChunkedArray {
 public:
  ChunkedArray() = default;

  static ChunkedArray from_vector(const std::vector<T>& v,
                                  std::size_t chunk = kChunkSize) {
    ChunkedArray out;
    for (std::size_t i = 0; i < v.size(); i += chunk) {
      std::size_t hi = std::min(v.size(), i + chunk);
      out.chunks_.push_back(std::make_shared<std::vector<T>>(
          v.begin() + static_cast<std::ptrdiff_t>(i),
          v.begin() + static_cast<std::ptrdiff_t>(hi)));
    }
    return out;
  }

  std::size_t chunk_count() const { return chunks_.size(); }

  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& c : chunks_) n += c->size();
    return n;
  }

  const std::vector<T>& chunk(std::size_t i) const {
    TRIOLET_ASSERT(i < chunks_.size());
    return *chunks_[i];
  }

  /// Contiguous sub-list of chunks (the distribution granule).
  ChunkedArray chunk_range(std::size_t lo, std::size_t hi) const {
    TRIOLET_CHECK(lo <= hi && hi <= chunks_.size(), "chunk range out of bounds");
    ChunkedArray out;
    out.chunks_.assign(chunks_.begin() + static_cast<std::ptrdiff_t>(lo),
                       chunks_.begin() + static_cast<std::ptrdiff_t>(hi));
    return out;
  }

  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size());
    for (const auto& c : chunks_) out.insert(out.end(), c->begin(), c->end());
    return out;
  }

  template <typename F>
  void for_each(F&& f) const {
    for (const auto& c : chunks_) {
      for (const T& v : *c) f(v);
    }
  }

  template <typename A, typename F>
  A foldl(F&& f, A acc) const {
    for (const auto& c : chunks_) {
      for (const T& v : *c) acc = f(std::move(acc), v);
    }
    return acc;
  }

  bool operator==(const ChunkedArray& o) const {
    return to_vector() == o.to_vector();
  }

  // Serialization walks the chunk structure (no single block copy — each
  // chunk is framed separately, mirroring Eden's per-object serialization).
  std::vector<std::vector<T>> chunks_for_serialization() const {
    std::vector<std::vector<T>> out;
    out.reserve(chunks_.size());
    for (const auto& c : chunks_) out.push_back(*c);
    return out;
  }
  static ChunkedArray from_chunks(std::vector<std::vector<T>> chunks) {
    ChunkedArray out;
    for (auto& c : chunks) {
      out.chunks_.push_back(std::make_shared<std::vector<T>>(std::move(c)));
    }
    return out;
  }

 private:
  std::vector<std::shared_ptr<std::vector<T>>> chunks_;
};

}  // namespace triolet::eden

namespace triolet::serial {

template <typename T>
struct Codec<triolet::eden::ChunkedArray<T>> {
  static void write(ByteWriter& w, const triolet::eden::ChunkedArray<T>& a) {
    serial::write(w, a.chunks_for_serialization());
  }
  static void read(ByteReader& r, triolet::eden::ChunkedArray<T>& a) {
    std::vector<std::vector<T>> chunks;
    serial::read(r, chunks);
    a = triolet::eden::ChunkedArray<T>::from_chunks(std::move(chunks));
  }
};

}  // namespace triolet::serial
