#pragma once

// Dense array library.
//
// Triolet stores bulk data in unboxed arrays and partitions them across
// cluster nodes by slicing (§3.5). The arrays here carry a *global base
// offset*: a slice of xs covering global indices [lo, hi) is itself an
// Array1 whose operator[] still accepts the global index. That is what lets
// a sliced data source be used by an unchanged extractor function on the
// receiving node — no index remapping code is generated at the use site.

#include <cstdint>
#include <span>
#include <vector>

#include "serial/serialize.hpp"
#include "support/macros.hpp"

namespace triolet {

using index_t = std::int64_t;

/// One-dimensional dense array with a global base offset.
template <typename T>
class Array1 {
 public:
  Array1() = default;

  explicit Array1(index_t n, T fill = T{}) : base_(0), data_(checked(n), fill) {}

  Array1(index_t base, std::vector<T> data) : base_(base), data_(std::move(data)) {}

  static Array1 from(std::vector<T> data) { return Array1(0, std::move(data)); }

  index_t base() const { return base_; }
  index_t size() const { return static_cast<index_t>(data_.size()); }
  index_t lo() const { return base_; }
  index_t hi() const { return base_ + size(); }

  /// Element at *global* index i.
  const T& operator[](index_t i) const {
    TRIOLET_ASSERT(i >= lo() && i < hi());
    return data_[static_cast<std::size_t>(i - base_)];
  }
  T& operator[](index_t i) {
    TRIOLET_ASSERT(i >= lo() && i < hi());
    return data_[static_cast<std::size_t>(i - base_)];
  }

  const T* data() const { return data_.data(); }
  T* data() { return data_.data(); }
  std::span<const T> span() const { return data_; }
  std::span<T> span() { return data_; }
  const std::vector<T>& storage() const { return data_; }

  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Copy of the global index range [s, e) as a new array keeping global
  /// indexing. This is the data-source slicing primitive.
  Array1 slice(index_t s, index_t e) const {
    TRIOLET_CHECK(s >= lo() && e <= hi() && s <= e, "slice out of range");
    return Array1(s, std::vector<T>(data_.begin() + (s - base_),
                                    data_.begin() + (e - base_)));
  }

  bool operator==(const Array1& o) const = default;

 private:
  static std::size_t checked(index_t n) {
    TRIOLET_CHECK(n >= 0, "array size must be non-negative");
    return static_cast<std::size_t>(n);
  }

  index_t base_ = 0;
  std::vector<T> data_;
};

/// Two-dimensional dense row-major array with a global row base offset.
/// Slicing is row-granular (the granularity used by `rows` + `outerproduct`
/// block decompositions).
template <typename T>
class Array2 {
 public:
  Array2() = default;

  Array2(index_t h, index_t w, T fill = T{})
      : row_base_(0), h_(h), w_(w),
        data_(static_cast<std::size_t>(checked(h) * checked(w)), fill) {}

  Array2(index_t row_base, index_t h, index_t w, std::vector<T> data)
      : row_base_(row_base), h_(h), w_(w), data_(std::move(data)) {
    TRIOLET_CHECK(static_cast<index_t>(data_.size()) == h_ * w_,
                  "Array2 storage size mismatch");
  }

  index_t rows() const { return h_; }
  index_t cols() const { return w_; }
  index_t row_base() const { return row_base_; }
  index_t row_lo() const { return row_base_; }
  index_t row_hi() const { return row_base_ + h_; }
  index_t size() const { return h_ * w_; }

  /// Element at (*global* row y, column x).
  const T& operator()(index_t y, index_t x) const {
    TRIOLET_ASSERT(y >= row_lo() && y < row_hi() && x >= 0 && x < w_);
    return data_[static_cast<std::size_t>((y - row_base_) * w_ + x)];
  }
  T& operator()(index_t y, index_t x) {
    TRIOLET_ASSERT(y >= row_lo() && y < row_hi() && x >= 0 && x < w_);
    return data_[static_cast<std::size_t>((y - row_base_) * w_ + x)];
  }

  /// Contiguous view of one row (global row index).
  std::span<const T> row(index_t y) const {
    TRIOLET_ASSERT(y >= row_lo() && y < row_hi());
    return {data_.data() + static_cast<std::size_t>((y - row_base_) * w_),
            static_cast<std::size_t>(w_)};
  }
  std::span<T> row(index_t y) {
    TRIOLET_ASSERT(y >= row_lo() && y < row_hi());
    return {data_.data() + static_cast<std::size_t>((y - row_base_) * w_),
            static_cast<std::size_t>(w_)};
  }

  const T* data() const { return data_.data(); }
  T* data() { return data_.data(); }
  const std::vector<T>& storage() const { return data_; }

  /// Copy of global rows [r0, r1) keeping global row indexing.
  Array2 slice_rows(index_t r0, index_t r1) const {
    TRIOLET_CHECK(r0 >= row_lo() && r1 <= row_hi() && r0 <= r1,
                  "row slice out of range");
    auto first = data_.begin() + (r0 - row_base_) * w_;
    auto last = data_.begin() + (r1 - row_base_) * w_;
    return Array2(r0, r1 - r0, w_, std::vector<T>(first, last));
  }

  bool operator==(const Array2& o) const = default;

 private:
  static index_t checked(index_t n) {
    TRIOLET_CHECK(n >= 0, "array dimension must be non-negative");
    return n;
  }

  index_t row_base_ = 0;
  index_t h_ = 0;
  index_t w_ = 0;
  std::vector<T> data_;
};

/// Three-dimensional dense array (z-major), used by cutcp's potential grid.
template <typename T>
class Array3 {
 public:
  Array3() = default;

  Array3(index_t nz, index_t ny, index_t nx, T fill = T{})
      : nz_(nz), ny_(ny), nx_(nx),
        data_(static_cast<std::size_t>(nz * ny * nx), fill) {
    TRIOLET_CHECK(nz >= 0 && ny >= 0 && nx >= 0, "bad Array3 dims");
  }

  index_t dim_z() const { return nz_; }
  index_t dim_y() const { return ny_; }
  index_t dim_x() const { return nx_; }
  index_t size() const { return nz_ * ny_ * nx_; }

  const T& operator()(index_t z, index_t y, index_t x) const {
    TRIOLET_ASSERT(z >= 0 && z < nz_ && y >= 0 && y < ny_ && x >= 0 && x < nx_);
    return data_[static_cast<std::size_t>((z * ny_ + y) * nx_ + x)];
  }
  T& operator()(index_t z, index_t y, index_t x) {
    TRIOLET_ASSERT(z >= 0 && z < nz_ && y >= 0 && y < ny_ && x >= 0 && x < nx_);
    return data_[static_cast<std::size_t>((z * ny_ + y) * nx_ + x)];
  }

  const T* data() const { return data_.data(); }
  T* data() { return data_.data(); }
  const std::vector<T>& storage() const { return data_; }
  std::vector<T>& storage() { return data_; }

  bool operator==(const Array3& o) const = default;

 private:
  index_t nz_ = 0;
  index_t ny_ = 0;
  index_t nx_ = 0;
  std::vector<T> data_;
};

/// Out-of-place transpose (used by sgemm before multiplying).
template <typename T>
Array2<T> transpose(const Array2<T>& a) {
  TRIOLET_CHECK(a.row_base() == 0, "transpose expects an unsliced matrix");
  Array2<T> t(a.cols(), a.rows());
  for (index_t y = 0; y < a.rows(); ++y) {
    for (index_t x = 0; x < a.cols(); ++x) {
      t(x, y) = a(y, x);
    }
  }
  return t;
}

}  // namespace triolet

// -- serialization ------------------------------------------------------------

namespace triolet::serial {

template <typename T>
struct Codec<triolet::Array1<T>> {
  static void write(ByteWriter& w, const triolet::Array1<T>& a) {
    w.write_pod<index_t>(a.base());
    serial::write(w, a.storage());
  }
  static void read(ByteReader& r, triolet::Array1<T>& a) {
    auto base = r.read_pod<index_t>();
    std::vector<T> data;
    serial::read(r, data);
    a = triolet::Array1<T>(base, std::move(data));
  }
};

template <typename T>
struct Codec<triolet::Array2<T>> {
  static void write(ByteWriter& w, const triolet::Array2<T>& a) {
    w.write_pod<index_t>(a.row_base());
    w.write_pod<index_t>(a.rows());
    w.write_pod<index_t>(a.cols());
    serial::write(w, a.storage());
  }
  static void read(ByteReader& r, triolet::Array2<T>& a) {
    auto base = r.read_pod<index_t>();
    auto h = r.read_pod<index_t>();
    auto w2 = r.read_pod<index_t>();
    std::vector<T> data;
    serial::read(r, data);
    a = triolet::Array2<T>(base, h, w2, std::move(data));
  }
};

template <typename T>
struct Codec<triolet::Array3<T>> {
  static void write(ByteWriter& w, const triolet::Array3<T>& a) {
    w.write_pod<index_t>(a.dim_z());
    w.write_pod<index_t>(a.dim_y());
    w.write_pod<index_t>(a.dim_x());
    serial::write(w, a.storage());
  }
  static void read(ByteReader& r, triolet::Array3<T>& a) {
    auto nz = r.read_pod<index_t>();
    auto ny = r.read_pod<index_t>();
    auto nx = r.read_pod<index_t>();
    triolet::Array3<T> out(nz, ny, nx);
    std::vector<T> data;
    serial::read(r, data);
    TRIOLET_CHECK(static_cast<index_t>(data.size()) == out.size(),
                  "Array3 payload size mismatch");
    out.storage() = std::move(data);
    a = std::move(out);
  }
};

}  // namespace triolet::serial
