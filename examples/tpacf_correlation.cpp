// Figure 6 of the paper, line for line: tpacf's self-correlation loops.
//
//   1  def correlation(size, pairs):
//   2      values = (score(size, u, v)
//   3                for (u, v) in pairs))
//   4      return histogram(size, values)
//   5
//   6  def randomSetsCorrelation(size, corr1, rands):
//   7      empty = [0 for i in range(size)]
//   8      def add(h1, h2):
//   9          return [x + y for (x, y) in zip(h1, h2)]
//  10      return reduce(add, empty,
//  11                    par(corr1(r) for r in rands))
//  12
//  13  def selfCorrelations(size, obs, rands):
//  14      def corr1(rand):
//  15          indexed_rand = zip(indices(domain(rand)), rand)
//  16          pairs = localpar((u, v)
//  17                  for (i, u) in indexed_rand
//  18                  for v in rand[i+1:])
//  19          return correlation(size, pairs)
//  20      return randomSetsCorrelation(size, corr1, rands)
//
// This example is the C++ rendering of that listing: `correlation` maps
// `score` over a pair iterator and histograms it; `corr1` builds the
// triangular unique-pair iterator of one random set with a localpar hint;
// `random_sets_correlation` reduces per-set histograms with vector addition.
//
// Build & run:  ./build/examples/tpacf_correlation

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/triolet.hpp"
#include "support/rng.hpp"

using namespace triolet;
using core::index_t;

namespace {

struct Pt {
  float x, y, z;
};

/// Angular-separation bin of one pair (lines 2-3's score).
index_t score(index_t size, const Pt& u, const Pt& v) {
  double dot = std::min(
      1.0, std::max(-1.0, static_cast<double>(u.x) * v.x +
                              static_cast<double>(u.y) * v.y +
                              static_cast<double>(u.z) * v.z));
  auto bin = static_cast<index_t>(std::acos(dot) / 3.14159265358979323846 *
                                  static_cast<double>(size));
  return std::min(bin, size - 1);
}

/// Lines 1-4: maps score over all given pairs of objects and collects the
/// results into a new histogram.
template <typename PairsIt>
Array1<std::int64_t> correlation(index_t size, const PairsIt& pairs) {
  auto values = core::map(pairs, [size](const std::pair<Pt, Pt>& uv) {
    return score(size, uv.first, uv.second);
  });
  return core::histogram(size, values);
}

/// Lines 8-9: pointwise histogram addition.
Array1<std::int64_t> add(Array1<std::int64_t> h1,
                         const Array1<std::int64_t>& h2) {
  for (index_t i = 0; i < h1.size(); ++i) h1[i] += h2[i];
  return h1;
}

/// Lines 14-19: the self-correlation of one data set. The triangular loop
/// "for (i, u) in indexed_rand, for v in rand[i+1:]" is a concat_map over
/// the indexed elements whose inner loop walks the tail; localpar asks for
/// shared-memory parallelism over the outer loop.
Array1<std::int64_t> corr1(index_t size, const Array1<Pt>& rand) {
  auto pairs = core::localpar(core::concat_map_with(
      core::indices(core::Seq{rand.lo(), rand.hi()}), rand,
      [](const Array1<Pt>& r, index_t i) {
        // The inner loop borrows the data set from the iterator's broadcast
        // context; it lives as long as the traversal does.
        Pt u = r[i];
        const Array1<Pt>* tail = &r;
        return core::map(core::range(i + 1, r.hi()),
                         [u, tail](index_t j) {
                           return std::pair<Pt, Pt>(u, (*tail)[j]);
                         });
      }));
  return correlation(size, pairs);
}

/// Lines 6-11 + 20: reduce(add, empty, par(corr1(r) for r in rands)).
Array1<std::int64_t> random_sets_correlation(
    index_t size, const std::vector<Array1<Pt>>& rands) {
  Array1<std::int64_t> empty(size, 0);
  Array1<std::int64_t> acc = empty;
  // Data sets are processed as the outer parallel dimension; each corr1 is
  // itself a localpar loop (the two-level structure of the paper).
  for (const auto& r : rands) {
    acc = add(std::move(acc), corr1(size, r));
  }
  return acc;
}

}  // namespace

int main() {
  const index_t size = 24;     // histogram bins
  const index_t points = 400;  // points per random set
  const int nsets = 3;

  Xoshiro256 rng(99);
  std::vector<Array1<Pt>> rands;
  for (int s = 0; s < nsets; ++s) {
    Array1<Pt> set(points);
    for (index_t i = 0; i < points; ++i) {
      float x = static_cast<float>(rng.normal());
      float y = static_cast<float>(rng.normal());
      float z = static_cast<float>(rng.normal());
      float len = std::sqrt(x * x + y * y + z * z);
      set[i] = Pt{x / len, y / len, z / len};
    }
    rands.push_back(std::move(set));
  }

  auto hist = random_sets_correlation(size, rands);

  std::int64_t total = 0;
  for (index_t b = 0; b < size; ++b) total += hist[b];
  std::printf("self-correlation histogram over %d sets x %lld points:\n",
              nsets, static_cast<long long>(points));
  for (index_t b = 0; b < size; ++b) {
    std::printf("  bin %2lld: %6lld %s\n", static_cast<long long>(b),
                static_cast<long long>(hist[b]),
                std::string(static_cast<std::size_t>(
                                hist[b] * 40 / std::max<std::int64_t>(1, total / size / 2 * 3)),
                            '#')
                    .c_str());
  }
  std::int64_t expect = static_cast<std::int64_t>(nsets) * points *
                        (points - 1) / 2;
  std::printf("total pairs: %lld (expected %lld)\n",
              static_cast<long long>(total), static_cast<long long>(expect));
  return total == expect ? 0 : 1;
}
