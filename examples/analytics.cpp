// Aggregate analytics over a synthetic event log: a tour of the consumer
// API (count, sum, average, minimum/maximum, any_of/find_first, histogram)
// over one fused, irregular iterator pipeline.
//
// Build & run:  ./build/examples/analytics

#include <cstdio>

#include "core/triolet.hpp"
#include "support/rng.hpp"

using namespace triolet;
using namespace triolet::core;

namespace {

struct Event {
  std::int64_t user = 0;
  std::int64_t latency_us = 0;
  bool error = false;
};

Array1<Event> synthesize(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<Event> log(n);
  for (index_t i = 0; i < n; ++i) {
    Event e;
    e.user = static_cast<std::int64_t>(rng.below(5000));
    // Log-normal-ish latency: mostly fast, occasionally terrible.
    double base = rng.uniform(0.5, 2.0);
    double tail = rng.uniform() < 0.01 ? rng.uniform(50, 500) : 1.0;
    e.latency_us = static_cast<std::int64_t>(1000 * base * tail);
    e.error = rng.uniform() < 0.002;
    log[i] = e;
  }
  return log;
}

}  // namespace

int main() {
  const index_t n = 2'000'000;
  Array1<Event> log = synthesize(n, 77);

  // One lazy pipeline, consumed many ways; each consumer fuses the chain
  // into its own single pass.
  auto events = from_array(log);
  auto latencies = map(events, [](const Event& e) { return e.latency_us; });
  auto slow = filter(latencies,
                     [](std::int64_t us) { return us > 100'000; });

  std::printf("events                 : %lld\n", static_cast<long long>(n));
  std::printf("total latency (s)      : %.1f\n",
              static_cast<double>(sum(localpar(latencies))) / 1e6);
  std::printf("mean latency (us)      : %.0f\n", average(latencies));
  std::printf("min / max latency (us) : %lld / %lld\n",
              static_cast<long long>(minimum(latencies)),
              static_cast<long long>(maximum(latencies)));
  std::printf("slow events (>100ms)   : %lld\n",
              static_cast<long long>(count(localpar(slow))));
  std::printf("any errors?            : %s\n",
              any_of(events, [](const Event& e) { return e.error; })
                  ? "yes" : "no");

  auto first_err = find_first(indexed(events), [](const auto& ie) {
    return ie.second.error;
  });
  if (first_err) {
    std::printf("first error at index   : %lld (user %lld)\n",
                static_cast<long long>(first_err->first),
                static_cast<long long>(first_err->second.user));
  }

  // Latency histogram in decades, threaded with per-worker privatization.
  auto buckets = map(latencies, [](std::int64_t us) {
    index_t b = 0;
    while (us >= 10 && b < 7) {
      us /= 10;
      ++b;
    }
    return b;
  });
  auto hist = histogram(8, localpar(buckets));
  std::printf("\nlatency decades (us):\n");
  const char* labels[] = {"<10",    "10-100",  "100-1k",  "1k-10k",
                          "10k-100k", "100k-1M", "1M-10M",  ">=10M"};
  for (index_t b = 0; b < 8; ++b) {
    std::printf("  %-9s %8lld %s\n", labels[b],
                static_cast<long long>(hist[b]),
                std::string(static_cast<std::size_t>(
                                hist[b] * 50 / std::max<std::int64_t>(1, n)),
                            '#')
                    .c_str());
  }
  return 0;
}
