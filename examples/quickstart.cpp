// Quickstart: the paper's §2 dot product, from sequential to threaded to
// distributed execution.
//
//   def dot(xs, ys):
//       return sum(x*y for (x, y) in par(zip(xs, ys)))
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"

using namespace triolet;

namespace {

/// The Triolet program. zip of two array traversals stays an indexer, map
/// fuses into its lookup, and sum drives the fused loop — sequentially,
/// across threads, or across cluster nodes depending on the hint.
template <typename It>
double dot_iter_sum(const It& it) {
  return core::sum(it);
}

auto dot_expr(const Array1<double>& xs, const Array1<double>& ys) {
  return core::map(core::zip(core::from_array(xs), core::from_array(ys)),
                   [](const auto& p) { return p.first * p.second; });
}

}  // namespace

int main() {
  const core::index_t n = 1'000'000;
  Xoshiro256 rng(2026);
  Array1<double> xs(n), ys(n);
  for (core::index_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform(-1.0, 1.0);
    ys[i] = rng.uniform(-1.0, 1.0);
  }

  // 1. Sequential: the default hint.
  double d_seq = dot_iter_sum(dot_expr(xs, ys));
  std::printf("sequential dot     = %.6f\n", d_seq);

  // 2. Threaded on this node: localpar.
  double d_local = dot_iter_sum(core::localpar(dot_expr(xs, ys)));
  std::printf("localpar dot       = %.6f\n", d_local);

  // 3. Distributed: par under an SPMD cluster. Rank 0 holds the data; each
  //    node receives only its slice of both arrays (serialized), computes a
  //    threaded partial sum, and partials combine at the root.
  double d_dist = 0.0;
  auto result = net::Cluster::run(4, [&](net::Comm& comm) {
    dist::NodeRuntime node(/*threads_per_node=*/2);
    double r = dist::sum(comm, [&] { return core::par(dot_expr(xs, ys)); });
    if (comm.rank() == 0) d_dist = r;
  });
  if (!result.ok) {
    std::printf("cluster failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("distributed dot    = %.6f   (4 nodes, %lld bytes moved)\n",
              d_dist, static_cast<long long>(result.total_stats.bytes_sent));

  std::printf("agreement: |seq-local| = %.2e, |seq-dist| = %.2e\n",
              std::abs(d_seq - d_local), std::abs(d_seq - d_dist));
  return 0;
}
