// k-means clustering built entirely from the public skeleton API — a
// scenario beyond the paper's four benchmarks showing the library carrying
// an iterative algorithm: each round is one fused parallel pipeline
// (assign points to nearest centroid, accumulate per-cluster sums via the
// histogram machinery). The distributed loop at the end runs the same
// rounds over *resident* data: the points live in a dist::DistArray, so
// every scatter after the first ships an 8-byte token instead of the
// payload (docs/INTERNALS.md "Data residency & slice caching"), and the
// centroids travel as a dist::DistContext whose version bump each round
// re-ships only the tiny context.
//
// Build & run:  ./build/examples/kmeans

#include <cmath>
#include <cstdio>

#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"

using namespace triolet;
using namespace triolet::core;

namespace {

struct Pt2 {
  float x = 0, y = 0;
};

struct Centroids {
  std::vector<Pt2> c;
  bool operator==(const Centroids&) const = default;
};
// Field visitor in the same (anonymous) namespace so ADL finds it when the
// centroids cross the wire as broadcast context.
TRIOLET_SERIALIZE_FIELDS(Centroids, c)

index_t nearest(const Centroids& ks, Pt2 p) {
  index_t best = 0;
  float best_d = 1e30f;
  for (std::size_t k = 0; k < ks.c.size(); ++k) {
    float dx = ks.c[k].x - p.x, dy = ks.c[k].y - p.y;
    float d = dx * dx + dy * dy;
    if (d < best_d) {
      best_d = d;
      best = static_cast<index_t>(k);
    }
  }
  return best;
}

/// One k-means round as skeleton pipelines: per-cluster sums and counts are
/// float/integer histograms over the fused assignment loop.
Centroids kmeans_round(const Array1<Pt2>& points, const Centroids& ks,
                       bool threaded) {
  const auto kcount = static_cast<index_t>(ks.c.size());
  auto assign = map_with(from_array(points), ks,
                         [](const Centroids& cs, Pt2 p) {
                           return std::pair<index_t, Pt2>(nearest(cs, p), p);
                         });
  auto hinted = threaded ? localpar(assign) : assign;

  auto sum_x = float_histogram<double>(
      kcount, map(hinted, [](const auto& ap) {
        return std::pair<index_t, float>(ap.first, ap.second.x);
      }));
  auto sum_y = float_histogram<double>(
      kcount, map(hinted, [](const auto& ap) {
        return std::pair<index_t, float>(ap.first, ap.second.y);
      }));
  auto counts = histogram(
      kcount, map(hinted, [](const auto& ap) { return ap.first; }));

  Centroids next = ks;
  for (index_t k = 0; k < kcount; ++k) {
    if (counts[k] > 0) {
      next.c[static_cast<std::size_t>(k)] = {
          static_cast<float>(sum_x[k] / static_cast<double>(counts[k])),
          static_cast<float>(sum_y[k] / static_cast<double>(counts[k]))};
    }
  }
  return next;
}

double inertia(const Array1<Pt2>& points, const Centroids& ks) {
  auto dists = map_with(from_array(points), ks,
                        [](const Centroids& cs, Pt2 p) {
                          index_t k = nearest(cs, p);
                          float dx = cs.c[static_cast<std::size_t>(k)].x - p.x;
                          float dy = cs.c[static_cast<std::size_t>(k)].y - p.y;
                          return static_cast<double>(dx * dx + dy * dy);
                        });
  return sum(localpar(dists));
}

}  // namespace

int main() {
  // Three well-separated Gaussian blobs.
  const index_t n = 150000;
  const Pt2 true_centers[3] = {{-4, -4}, {0, 5}, {6, -1}};
  Xoshiro256 rng(12);
  Array1<Pt2> points(n);
  for (index_t i = 0; i < n; ++i) {
    const Pt2 c = true_centers[rng.below(3)];
    points[i] = {c.x + static_cast<float>(rng.normal()),
                 c.y + static_cast<float>(rng.normal())};
  }

  Centroids ks;
  ks.c = {{-1, -1}, {1, 0}, {0, 1}};  // poor initial guesses

  double prev = inertia(points, ks);
  std::printf("round  inertia\n    0  %.1f\n", prev);
  for (int round = 1; round <= 12; ++round) {
    ks = kmeans_round(points, ks, /*threaded=*/true);
    double cur = inertia(points, ks);
    std::printf("%5d  %.1f\n", round, cur);
    if (prev - cur < 1e-6 * prev) break;
    prev = cur;
  }

  std::printf("\nfinal centroids (true centers: (-4,-4) (0,5) (6,-1)):\n");
  for (const auto& c : ks.c) std::printf("  (%.2f, %.2f)\n", c.x, c.y);

  // Each learned centroid should be within 0.1 of some true center.
  int matched = 0;
  for (const auto& c : ks.c) {
    for (const auto& t : true_centers) {
      float dx = c.x - t.x, dy = c.y - t.y;
      if (std::sqrt(dx * dx + dy * dy) < 0.1f) {
        ++matched;
        break;
      }
    }
  }
  std::printf("centroids matched to true centers: %d/3\n", matched);

  // Distributed k-means from the same poor guesses, over resident data
  // under a 4-node cluster. Only rank 0 touches the handles: `make` runs at
  // the root, and the workers see the data exclusively through their slice
  // caches.
  dist::DistArray<Pt2> dpoints{Array1<Pt2>(points)};
  dist::DistContext<Centroids> dks{Centroids{{{-1, -1}, {1, 0}, {0, 1}}}};
  std::uint64_t tokens_sent = 0;
  std::int64_t final_count_sum = 0;
  int dist_matched = 0;
  auto res = net::Cluster::run(4, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    const index_t kcount = 3;
    auto assign = [&] {
      return core::par(map_with(dist::from_resident(dpoints), dks.ctx(),
                                [](const Centroids& cs, Pt2 p) {
                                  return std::pair<index_t, Pt2>(nearest(cs, p),
                                                                 p);
                                }));
    };
    // The three reductions of each round run under the model-driven
    // scheduler: the array's tune_key ties them to one shared AutoTuner on
    // the Comm, so the first call measures, and every later call runs the
    // calibrated model's pick — no per-workload policy/grain flags.
    const auto opts = dist::auto_options(dpoints.tune_key());
    std::printf("%s", comm.rank() == 0 ? "\ndistributed rounds (resident):\n"
                                       : "");
    for (int round = 1; round <= 8; ++round) {
      const net::CommStats before = comm.snapshot_stats();
      auto sum_x = dist::float_histogram<double>(comm, kcount, [&] {
        return map(assign(), [](const auto& ap) {
          return std::pair<index_t, float>(ap.first, ap.second.x);
        });
      }, opts);
      auto sum_y = dist::float_histogram<double>(comm, kcount, [&] {
        return map(assign(), [](const auto& ap) {
          return std::pair<index_t, float>(ap.first, ap.second.y);
        });
      }, opts);
      auto counts = dist::histogram(
          comm, kcount, [&] {
            return map(assign(), [](const auto& ap) { return ap.first; });
          }, opts);
      if (comm.rank() == 0) {
        Centroids next = dks.value();
        for (index_t k = 0; k < kcount; ++k) {
          if (counts[k] > 0) {
            next.c[static_cast<std::size_t>(k)] = {
                static_cast<float>(sum_x[k] / static_cast<double>(counts[k])),
                static_cast<float>(sum_y[k] / static_cast<double>(counts[k]))};
          }
        }
        dks.update(std::move(next));
        const net::CommStats d = comm.snapshot_stats() - before;
        std::printf("  round %d: bytes_avoided +%llu (total %llu, tokens %llu)\n",
                    round,
                    static_cast<unsigned long long>(d.residency.bytes_avoided),
                    static_cast<unsigned long long>(
                        comm.residency_stats().bytes_avoided),
                    static_cast<unsigned long long>(
                        comm.residency_stats().tokens_sent));
        if (round == 8) {
          for (index_t k = 0; k < kcount; ++k) final_count_sum += counts[k];
          tokens_sent = comm.residency_stats().tokens_sent;
        }
      }
    }
    if (comm.rank() == 0) {
      for (const auto& c : dks.value().c) {
        for (const auto& t : true_centers) {
          float dx = c.x - t.x, dy = c.y - t.y;
          if (std::sqrt(dx * dx + dy * dy) < 0.1f) {
            ++dist_matched;
            break;
          }
        }
      }
    }
  });
  if (!res.ok) {
    std::printf("cluster failed: %s\n", res.error.c_str());
    return 1;
  }
  std::printf("distributed: counts sum %lld (expect %lld), "
              "centroids matched %d/3, resident tokens %llu\n",
              static_cast<long long>(final_count_sum),
              static_cast<long long>(n), dist_matched,
              static_cast<unsigned long long>(tokens_sent));
  if (final_count_sum != n || dist_matched != 3 || tokens_sent == 0) return 1;
  return matched == 3 ? 0 : 1;
}
