// mri-q (paper §4.2) as an application of the public API: a non-uniform 3D
// inverse Fourier transform distilled to the paper's two lines:
//
//   [sum(ftcoeff(k, r) for k in ks)
//    for r in par(zip3(x, y, z))]
//
// Build & run:  ./build/examples/mriq_image

#include <cstdio>

#include "apps/mriq.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"

using namespace triolet;
using namespace triolet::apps;

int main() {
  MriqProblem problem = make_mriq(/*pixels=*/2000, /*samples=*/200, 17);

  MriqResult ref = mriq_seq_c(problem);
  MriqResult threaded = mriq_triolet(problem, core::ParHint::kLocal);

  MriqResult distributed;
  auto result = net::Cluster::run(3, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    auto r = mriq_triolet_dist(comm, problem);
    if (comm.rank() == 0) distributed = std::move(r);
  });
  if (!result.ok) {
    std::printf("cluster failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("pixels=%lld samples=%lld\n",
              static_cast<long long>(problem.pixels()),
              static_cast<long long>(problem.samples()));
  std::printf("rel. error threads    vs seq: %.3e\n",
              mriq_rel_error(ref, threaded));
  std::printf("rel. error distributed vs seq: %.3e\n",
              mriq_rel_error(ref, distributed));
  std::printf("traffic: %lld bytes (pixel slices + one k-space copy per "
              "node)\n",
              static_cast<long long>(result.total_stats.bytes_sent));
  std::printf("first pixels (Qr, Qi): ");
  for (int i = 0; i < 4; ++i) {
    std::printf("(%.3f, %.3f) ", distributed.qr[static_cast<std::size_t>(i)],
                distributed.qi[static_cast<std::size_t>(i)]);
  }
  std::printf("\n");
  return mriq_rel_error(ref, distributed) < 1e-4 ? 0 : 1;
}
