// A Triolet service serving a mixed job stream.
//
// One resident JobManager (4 ranks) takes submissions from two tenants: a
// burst of small latency-sensitive analytics jobs (kOrdered reduces, so
// their answers are bit-reproducible) and two heavyweight jobs that rescan
// one shared resident dataset under the fair-share grant gate. The small
// jobs share a batch_key, so the manager coalesces them into batch groups;
// the large jobs run concurrently in their own tag bands.
//
// The example prints a per-job table (queue time, run time, band, batch
// company, fair-share grants) and self-validates: every small job's result
// must be bitwise identical to the same reduction run solo in its own
// Cluster::run, and all jobs must succeed.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/triolet.hpp"
#include "dist/dist_array.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"
#include "svc/job_manager.hpp"

using namespace triolet;
using core::index_t;

namespace {

// Mixed-magnitude values: any change in fold order would flip low bits.
Array1<double> spiky(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  Array1<double> a(n);
  for (index_t i = 0; i < n; ++i) {
    a[i] = rng.uniform(-1.0, 1.0) * std::pow(10.0, rng.uniform(-9.0, 9.0));
  }
  return a;
}

double ordered_sum(net::Comm& comm, const Array1<double>& xs,
                   sched::SchedOptions opts) {
  opts.combine = sched::CombineMode::kOrdered;
  opts.grain = 32;
  return dist::reduce(comm, [&] { return core::from_array(xs); }, 0.0,
                      [](double a, double b) { return a + b; }, opts);
}

}  // namespace

int main() {
  const int n_small = 6;
  const index_t small_n = 2048;
  const index_t large_n = 1 << 15;

  std::vector<Array1<double>> small_data;
  for (int i = 0; i < n_small; ++i) {
    small_data.push_back(spiky(small_n, 1000 + static_cast<std::uint64_t>(i)));
  }
  Array1<double> dataset(large_n);
  for (index_t i = 0; i < large_n; ++i) {
    dataset[i] = 1e-6 * static_cast<double>((i * 31) % 4093);
  }
  dist::DistArray<double> resident{dataset};

  // Ground truth: each small job alone in a throwaway cluster.
  std::vector<double> solo(static_cast<std::size_t>(n_small), 0.0);
  for (int i = 0; i < n_small; ++i) {
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      dist::NodeRuntime node(1);
      double r = ordered_sum(comm, small_data[static_cast<std::size_t>(i)], {});
      if (comm.rank() == 0) solo[static_cast<std::size_t>(i)] = r;
    });
    if (!res.ok) {
      std::fprintf(stderr, "solo run failed: %s\n", res.error.c_str());
      return 1;
    }
  }

  svc::ServiceOptions so;
  so.nranks = 4;
  so.max_concurrent = 3;
  so.batch_limit = 4;
  svc::JobManager mgr(so);

  std::vector<double> served(static_cast<std::size_t>(n_small), 0.0);
  std::vector<std::pair<std::string, svc::JobHandle>> handles;

  // The large tenant: scheduled guided scans of the shared resident
  // dataset through the fair-share grant gate.
  auto scan_body = [&](svc::JobContext& ctx) {
    auto opts = ctx.sched_options();
    opts.policy = sched::SchedulePolicy::kGuided;
    for (int round = 0; round < 3; ++round) {
      (void)dist::sum(ctx.comm(), [&] {
        return core::map(dist::from_resident(resident),
                         [](double x) { return x * 1.5 + 1.0; });
      });
    }
    (void)dist::reduce(ctx.comm(), [&] {
      return core::map(dist::from_resident(resident),
                       [](double x) { return x * x; });
    }, 0.0, [](double a, double b) { return a + b; }, opts);
  };
  svc::JobOptions scan0;
  scan0.name = "scan-0";
  scan0.weight = 2;
  handles.emplace_back(scan0.name, mgr.submit(scan0, scan_body));

  // The small tenant: batched kOrdered jobs, double fair-share weight.
  for (int i = 0; i < n_small; ++i) {
    svc::JobOptions jo;
    jo.name = "small-" + std::to_string(i);
    jo.weight = 2;
    jo.batch_key = 1;
    handles.emplace_back(jo.name, mgr.submit(jo, [&, i](svc::JobContext& ctx) {
      double r = ordered_sum(ctx.comm(),
                             small_data[static_cast<std::size_t>(i)],
                             ctx.sched_options());
      if (ctx.rank() == 0) served[static_cast<std::size_t>(i)] = r;
    }));
  }

  // A second scan of the same dataset, submitted once the first is done:
  // it lands in a fresh group (new Comm), so its rescatter collapses to
  // residency tokens against the slices scan-0 left in the manager-owned
  // per-rank caches — the cross-job residency win.
  handles[0].second.wait();
  svc::JobOptions scan1;
  scan1.name = "scan-1";
  handles.emplace_back(scan1.name, mgr.submit(scan1, scan_body));

  std::printf("%-8s  %-5s  %9s  %9s  %6s  %7s  %6s  %6s\n", "job", "ok",
              "queued(s)", "run(s)", "band", "batched", "grants", "tokens");
  bool all_ok = true;
  std::int64_t scan1_tokens = 0;
  for (auto& [name, h] : handles) {
    svc::JobResult r = h.wait();
    all_ok = all_ok && r.ok;
    if (name == "scan-1") scan1_tokens = r.stats.residency.tokens_sent;
    std::printf("%-8s  %-5s  %9.4f  %9.4f  %6d  %7d  %6lld  %6lld\n",
                name.c_str(), r.ok ? "yes" : "NO", r.queued_seconds,
                r.run_seconds, r.band_base, r.batched_with,
                static_cast<long long>(r.fair_share.acquires),
                static_cast<long long>(r.stats.residency.tokens_sent));
  }
  mgr.drain();
  auto s = mgr.stats();
  std::printf("\nservice: %lld jobs, %lld batches (%lld jobs batched), "
              "peak %d groups, %lld band leases\n",
              static_cast<long long>(s.completed),
              static_cast<long long>(s.batches),
              static_cast<long long>(s.batched_jobs), s.peak_concurrent,
              static_cast<long long>(s.bands_leased));

  if (!all_ok) {
    std::fprintf(stderr, "a job failed\n");
    return 1;
  }
  if (scan1_tokens == 0) {
    std::fprintf(stderr, "scan-1 re-shipped the dataset (no tokens)\n");
    return 1;
  }
  for (int i = 0; i < n_small; ++i) {
    if (std::memcmp(&solo[static_cast<std::size_t>(i)],
                    &served[static_cast<std::size_t>(i)],
                    sizeof(double)) != 0) {
      std::fprintf(stderr, "small-%d diverged from its solo run\n", i);
      return 1;
    }
  }
  std::printf("all small-job results bitwise identical to solo runs\n");
  return 0;
}
