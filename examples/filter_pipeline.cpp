// Irregular pipelines (paper §3.2): how filter and concat_map keep their
// outer loops parallelizable by isolating irregularity in inner loops.
//
// Walks through the paper's sum-of-filter example and a variable-fanout
// concat_map pipeline, showing the iterator constructor at each step and
// that parallel and sequential execution agree.
//
// Build & run:  ./build/examples/filter_pipeline

#include <cstdio>

#include "core/triolet.hpp"
#include "support/rng.hpp"

using namespace triolet;
using namespace triolet::core;

namespace {

const char* kind_name(IterKind k) {
  switch (k) {
    case IterKind::kIdxFlat: return "IdxFlat (indexer of values)";
    case IterKind::kStepFlat: return "StepFlat (stepper of values)";
    case IterKind::kIdxNest: return "IdxNest (indexer of inner loops)";
    case IterKind::kStepNest: return "StepNest (stepper of inner loops)";
  }
  return "?";
}

}  // namespace

int main() {
  // The paper's §3.2 example: xs = [1, -2, -4, 1, 3, 4].
  Array1<int> xs(0, {1, -2, -4, 1, 3, 4});

  auto arr = from_array(xs);
  std::printf("from_array(xs)              : %s\n",
              kind_name(decltype(arr)::kKind));

  auto pos = filter(arr, [](int x) { return x > 0; });
  std::printf("filter(>0)                  : %s\n",
              kind_name(decltype(pos)::kKind));
  std::printf("  -> conceptually [[1], [], [], [1], [3], [4]]: indices are "
              "not reassigned,\n     so the outer loop still partitions.\n");
  std::printf("sum = %lld (paper: 9)\n\n", static_cast<long long>(sum(pos)));

  // Larger irregular pipeline: variable fanout + filtering, sequential vs
  // threaded execution of the same fused loop.
  const index_t n = 100000;
  Xoshiro256 rng(4);
  Array1<std::int64_t> seeds(n);
  for (index_t i = 0; i < n; ++i)
    seeds[i] = static_cast<std::int64_t>(rng.below(64));

  auto fanout = concat_map(from_array(seeds), [](std::int64_t s) {
    // Each input expands into s outputs: dynamically determined fanout.
    return map(range(0, s), [s](index_t j) { return s * 1000 + j; });
  });
  std::printf("concat_map(fanout)          : %s\n",
              kind_name(decltype(fanout)::kKind));

  auto odd = filter(fanout, [](std::int64_t v) { return v % 2 == 1; });
  std::printf("filter(odd) of the nest     : %s\n",
              kind_name(decltype(odd)::kKind));

  auto seq_count = count(odd);
  auto par_count = count(localpar(odd));
  auto seq_sum = sum(odd);
  auto par_sum = sum(localpar(odd));
  std::printf("count: seq=%lld localpar=%lld\n",
              static_cast<long long>(seq_count),
              static_cast<long long>(par_count));
  std::printf("sum:   seq=%lld localpar=%lld\n",
              static_cast<long long>(seq_sum),
              static_cast<long long>(par_sum));

  // Zipping an irregular iterator degrades (gracefully) to steppers.
  auto tagged = zip(odd, range(0, 1 << 30));
  std::printf("zip(irregular, range)       : %s\n",
              kind_name(decltype(tagged)::kKind));
  auto first = to_vector(filter(tagged, [](const auto& p) {
    return p.second < 3;  // keep the first three elements only
  }));
  std::printf("first tagged elements: ");
  for (const auto& [v, i] : first) {
    std::printf("(%lld,@%lld) ", static_cast<long long>(v),
                static_cast<long long>(i));
  }
  std::printf("\n");

  return (seq_count == par_count && seq_sum == par_sum) ? 0 : 1;
}
