// cutcp (paper §4.5) as an application of the public API: the electrostatic
// potential induced by a collection of charged atoms at all points on a
// grid, computed as a distributed floating-point histogram over a nested,
// irregular traversal:
//
//   atoms --concat_map--> nearby grid points --filter--> within cutoff
//         --map--> (cell, potential) --float_histogram--> potential grid
//
// Build & run:  ./build/examples/cutcp_potential

#include <cmath>
#include <cstdio>

#include "apps/cutcp.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"

using namespace triolet;
using namespace triolet::apps;

int main() {
  // A small molecular box: 2000 atoms over a 24^3 lattice.
  CutcpProblem problem = make_cutcp(2000, 24, 24, 24, 2.0f, 31);

  // Reference: plain sequential loop nest.
  CutcpGrid ref = cutcp_seq_c(problem);

  // Threaded on one node.
  CutcpGrid local = cutcp_triolet(problem, core::ParHint::kLocal);

  // Distributed across 4 nodes x 2 threads: atoms are sliced per node, each
  // node builds a private grid with threads, grids sum at the root.
  CutcpGrid dist_grid;
  auto result = net::Cluster::run(4, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    auto r = cutcp_triolet_dist(comm, problem);
    if (comm.rank() == 0) dist_grid = std::move(r);
  });
  if (!result.ok) {
    std::printf("cluster failed: %s\n", result.error.c_str());
    return 1;
  }

  std::printf("grid cells: %lld\n",
              static_cast<long long>(problem.grid.cells()));
  std::printf("rel. error (threads vs seq C): %.3e\n",
              cutcp_rel_error(ref, local));
  std::printf("rel. error (4 nodes  vs seq C): %.3e\n",
              cutcp_rel_error(ref, dist_grid));
  std::printf("traffic: %lld bytes (atom slices out, grids back)\n",
              static_cast<long long>(result.total_stats.bytes_sent));

  // A slice through the middle of the potential field.
  const auto& g = problem.grid;
  std::printf("\npotential along the box's central row:\n");
  for (index_t x = 0; x < g.nx; x += 2) {
    index_t cell = ((g.nz / 2) * g.ny + g.ny / 2) * g.nx + x;
    double v = dist_grid[cell];
    int bars = static_cast<int>(std::min(60.0, std::abs(v) * 2.0));
    std::printf("  x=%2lld % 8.3f %s\n", static_cast<long long>(x), v,
                std::string(static_cast<std::size_t>(bars), v >= 0 ? '+' : '-')
                    .c_str());
  }
  return cutcp_rel_error(ref, dist_grid) < 1e-4 ? 0 : 1;
}
