// Schedule policies on an irregular workload.
//
// A filtered/skewed iteration space leaves a static block split imbalanced;
// the SchedOptions knob re-maps the same computation onto the demand-driven
// scheduler without touching the loop body. This example runs one skewed
// reduction under all three policies and checks they agree — exactly, for
// the ordered combine mode.

#include <cmath>
#include <cstdio>
#include <cstring>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"

using namespace triolet;
using core::index_t;

int main() {
  const index_t n = 512;
  Array1<double> costs(n);
  for (index_t i = 0; i < n; ++i) costs[i] = static_cast<double>(i);

  // Item i costs O(i): the triangular shape of pair-correlation loops.
  auto workload = [&] {
    return core::map(core::from_array(costs), [](double c) {
      double v = 0.0;
      for (int k = 0; k < static_cast<int>(c); ++k) v += std::sin(v + k);
      return v;
    });
  };

  const sched::SchedulePolicy policies[] = {sched::SchedulePolicy::kStatic,
                                            sched::SchedulePolicy::kGuided,
                                            sched::SchedulePolicy::kDynamic};
  double results[3] = {};
  for (int i = 0; i < 3; ++i) {
    sched::SchedOptions opts{policies[i], sched::CombineMode::kOrdered, 16};
    auto res = net::Cluster::run(4, [&](net::Comm& comm) {
      dist::NodeRuntime node(2);
      double r = dist::reduce(comm, workload, 0.0,
                              [](double a, double b) { return a + b; }, opts);
      if (comm.rank() == 0) results[i] = r;
    });
    if (!res.ok) {
      std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
      return 1;
    }
    const auto& s = res.total_stats.sched;
    std::printf("%-8s sum = %.12f  (%lld requests, %lld grants, %lld ctrl bytes)\n",
                sched::to_string(policies[i]), results[i],
                static_cast<long long>(s.requests_sent),
                static_cast<long long>(s.grants_served),
                static_cast<long long>(s.control_bytes));
  }

  // Ordered combine folds per-atom partials in atom order, so every policy
  // must produce the same bits.
  for (int i = 1; i < 3; ++i) {
    if (std::memcmp(&results[0], &results[i], sizeof(double)) != 0) {
      std::fprintf(stderr, "policy results diverged\n");
      return 1;
    }
  }
  std::printf("all policies agree bitwise\n");
  return 0;
}
