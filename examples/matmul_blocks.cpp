// The paper's §2 two-line matrix multiplication with 2D block distribution:
//
//   zipped_AB = outerproduct(rows(A), rows(BT))
//   AB = [dot(u, v) for (u, v) in par(zipped_AB)]
//
// `rows` reinterprets each matrix as a 1D iterator over rows;
// `outerproduct` pairs row u of A with row v of BT at block position (u, v);
// slicing a 2D block of the result extracts exactly the rows of A and BT
// that block needs — so each cluster node receives only its input rows.
//
// Build & run:  ./build/examples/matmul_blocks

#include <cstdio>

#include "core/triolet.hpp"
#include "dist/skeletons.hpp"
#include "net/cluster.hpp"
#include "support/rng.hpp"

using namespace triolet;

int main() {
  const core::index_t n = 128, k = 96, m = 112;
  Xoshiro256 rng(7);
  Array2<double> a(n, k), b(k, m);
  for (core::index_t y = 0; y < n; ++y)
    for (core::index_t x = 0; x < k; ++x) a(y, x) = rng.uniform(-1, 1);
  for (core::index_t y = 0; y < k; ++y)
    for (core::index_t x = 0; x < m; ++x) b(y, x) = rng.uniform(-1, 1);

  // Transpose B so dot products read contiguous rows.
  Array2<double> bt = transpose(b);

  // The two-line program.
  auto dot = [](const auto& uv) {
    double acc = 0;
    for (std::size_t i = 0; i < uv.first.size(); ++i)
      acc += uv.first[i] * uv.second[i];
    return acc;
  };
  auto ab_expr = [&] {
    return core::par(
        core::map(core::outerproduct(core::rows(a), core::rows(bt)), dot));
  };

  Array2<double> ab;
  auto result = net::Cluster::run(4, [&](net::Comm& comm) {
    dist::NodeRuntime node(2);
    auto r = dist::build_array2(comm, ab_expr);
    if (comm.rank() == 0) ab = std::move(r);
  });
  if (!result.ok) {
    std::printf("cluster failed: %s\n", result.error.c_str());
    return 1;
  }

  // Validate against a straightforward triple loop.
  double max_err = 0;
  for (core::index_t y = 0; y < n; ++y) {
    for (core::index_t x = 0; x < m; ++x) {
      double ref = 0;
      for (core::index_t i = 0; i < k; ++i) ref += a(y, i) * b(i, x);
      max_err = std::max(max_err, std::abs(ref - ab(y, x)));
    }
  }
  std::printf("distributed %lldx%lld matmul on 4 nodes: max abs error %.3e\n",
              static_cast<long long>(n), static_cast<long long>(m), max_err);
  std::printf("traffic: %lld bytes (only the rows each block needs)\n",
              static_cast<long long>(result.total_stats.bytes_sent));
  return max_err < 1e-9 ? 0 : 1;
}
