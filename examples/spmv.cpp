// Iterative sparse matvec on a resident segmented source.
//
// A power-law CSR matrix — a few hub rows holding most of the nonzeros —
// is wrapped in a SegmentedDistArray once, outside the round loop. Each
// round computes a scalar surrogate of y = A x through dist::transform
// over the segments and a kOrdered reduction. The matrix ships on the
// cold round and tokenizes afterwards: the per-round residency deltas
// printed below show warm rounds moving 8-byte tokens while
// view_bytes_avoided accounts for the nonzeros that did NOT cross the
// wire. Policies agree bitwise because kOrdered folds per-atom partials
// in atom order regardless of which rank computed them.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "core/triolet.hpp"
#include "dist/segmented.hpp"
#include "dist/skeletons.hpp"
#include "dist/views.hpp"
#include "net/cluster.hpp"

using namespace triolet;
using core::index_t;

int main() {
  const index_t nrows = 2048, ncols = 256;
  const int rounds = 4, ranks = 4;

  // CSR with (col, val) pairs interleaved in one values leaf; hub rows
  // (the first nrows/64, sorted-degree layout) carry half the columns.
  std::vector<index_t> offsets{0};
  std::vector<double> packed;
  const index_t hubs = nrows / 64;
  for (index_t r = 0; r < nrows; ++r) {
    const index_t len = r < hubs ? ncols / 2 : 2 + r % 6;
    for (index_t k = 0; k < len; ++k) {
      packed.push_back(static_cast<double>((r * 31 + k * 17) % ncols));
      packed.push_back(std::sin(0.7 * static_cast<double>(r + k)));
    }
    offsets.push_back(static_cast<index_t>(packed.size()));
  }
  std::vector<double> x(static_cast<std::size_t>(ncols));
  for (index_t c = 0; c < ncols; ++c) {
    x[static_cast<std::size_t>(c)] = std::sin(0.01 * static_cast<double>(c));
  }

  // Sequential reference for a sanity band (not bitwise: the distributed
  // fold groups by atom, the loop below by row).
  double ref = 0.0;
  for (index_t r = 0; r < nrows; ++r) {
    double dot = 0.0;
    for (index_t o = offsets[static_cast<std::size_t>(r)] / 2;
         o < offsets[static_cast<std::size_t>(r) + 1] / 2; ++o) {
      dot += packed[static_cast<std::size_t>(2 * o + 1)] *
             x[static_cast<std::size_t>(packed[static_cast<std::size_t>(
                 2 * o)])];
    }
    ref += dot;
  }

  const sched::SchedulePolicy policies[] = {sched::SchedulePolicy::kStatic,
                                            sched::SchedulePolicy::kDynamic};
  double results[2] = {};
  for (int p = 0; p < 2; ++p) {
    dist::SegmentedDistArray<double> a(offsets, packed);
    sched::SchedOptions opts;
    opts.policy = policies[p];
    opts.combine = sched::CombineMode::kOrdered;
    opts.grain = 4;
    opts.tune_key = a.tune_key();
    auto res = net::Cluster::run(ranks, [&](net::Comm& comm) {
      dist::NodeRuntime node(1);
      auto spmv = [&] {
        return dist::transform(
            dist::from_segmented(a), [&x](const dist::Segment<double>& s) {
              double dot = 0.0;
              const auto nnz = static_cast<std::size_t>(s.size()) / 2;
              for (std::size_t k = 0; k < nnz; ++k) {
                dot += s[2 * k + 1] * x[static_cast<std::size_t>(s[2 * k])];
              }
              return dot;
            });
      };
      double y = 0.0;
      for (int r = 0; r < rounds; ++r) {
        const net::CommStats before = comm.snapshot_stats();
        y = dist::sum(comm, spmv, opts);
        const net::CommStats delta = comm.snapshot_stats() - before;
        if (comm.rank() == 0) {
          // Rank 0 encodes the grants, so its delta carries the view
          // counters for the whole round.
          std::printf("  %-8s round %d: sum(Ax) = %.9f  "
                      "(%lld view tokens, %lld bytes avoided)\n",
                      sched::to_string(policies[p]), r, y,
                      static_cast<long long>(delta.views.view_tokens),
                      static_cast<long long>(
                          delta.views.view_bytes_avoided));
        }
      }
      if (comm.rank() == 0) results[p] = y;
    });
    if (!res.ok) {
      std::fprintf(stderr, "cluster failed: %s\n", res.error.c_str());
      return 1;
    }
    // Warm rounds must have tokenized the resident leaves: the avoided
    // bytes dwarf what actually moved after round 0. Only the static
    // policy's chunk→rank assignment is deterministic; under kDynamic a
    // loaded machine can legitimately land a leaf on a different rank
    // each round, so the hard check applies to kStatic alone.
    if (policies[p] == sched::SchedulePolicy::kStatic &&
        (res.total_stats.views.view_bytes_avoided <= 0 ||
         res.total_stats.residency.fetches != 0)) {
      std::fprintf(stderr, "residency path did not tokenize\n");
      return 1;
    }
  }

  if (std::memcmp(&results[0], &results[1], sizeof(double)) != 0) {
    std::fprintf(stderr, "policy results diverged\n");
    return 1;
  }
  if (std::abs(results[0] - ref) > 1e-9 * std::abs(ref)) {
    std::fprintf(stderr, "result off the sequential reference\n");
    return 1;
  }
  std::printf("static and dynamic agree bitwise; warm rounds ran on "
              "tokens, not nonzeros\n");
  return 0;
}
